// Deadline / cancellation token for the serving tier (docs/ROBUSTNESS.md,
// "Overload and deadlines").
//
// Every server command carries a time budget. The budget is stamped as an
// ABSOLUTE steady_clock point when the command is accepted (submit time),
// so time spent queued on the strand counts against it — a command that
// waited out its whole budget in the queue fails immediately instead of
// starting work it can no longer finish. A wait that runs out of budget
// raises the typed DeadlineExceeded (part of the IoError taxonomy,
// util/io_error.hpp) instead of blocking the strand forever.
//
// Plumbing is by scoped thread-local context, not parameters: the command
// vocabulary reaches blocking waits through interfaces that predate
// deadlines (VolumeSequence::step -> ClientSequenceView -> VolumeStore ->
// Prefetcher), and threading a Deadline argument through every pipeline
// in between would churn every caller for a concern only the server has.
// SessionManager installs a DeadlineScope around command execution; any
// blocking wait below it consults Deadline::current(). Threads with no
// scope installed (prefetch workers, single-tenant pipelines, tests that
// never opted in) see the unlimited deadline and behave exactly as before
// — in particular an async prefetch keeps loading after its waiter timed
// out, so the bytes still land in cache for the retry.
//
// Determinism: reading the clock is inherently nondeterministic, which is
// why every clock read below carries an IFET_DET_ALLOW waiver — a
// deadline can change WHETHER a command completes (typed failure), never
// the bytes of a completed result. The shed/backpressure decision in the
// server deliberately does NOT consult Deadline/now(): it is a pure
// function of queue state (see server/session_manager.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "util/hot_path.hpp"
#include "util/io_error.hpp"

namespace ifet {

/// Shared cancellation flag: cancel() makes every Deadline carrying the
/// source's token report expired at its next check. Cancellation is
/// checked at command boundaries and before blocking waits; it does not
/// interrupt a wait already in progress (the time budget bounds those).
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  std::shared_ptr<const std::atomic<bool>> token() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Value-type budget token: an optional absolute expiry point plus an
/// optional cancellation token. Copyable, cheap, and safe to pass across
/// threads (the cancel flag is a shared atomic).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed == unlimited: never expires, never cancels.
  Deadline() = default;

  static Deadline unlimited() { return Deadline{}; }

  /// Absolute deadline `ms` from now; ms <= 0 is already expired.
  static Deadline after_ms(double ms) {
    Deadline d;
    d.limited_ = true;
    IFET_DET_ALLOW("deadline stamping reads the clock; budgets gate "
                   "completion, never the bytes of a completed result");
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     ms > 0.0 ? ms : 0.0));
    return d;
  }

  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.limited_ = true;
    d.when_ = when;
    return d;
  }

  /// Attach a cancellation token (see CancelSource).
  Deadline with_cancel(std::shared_ptr<const std::atomic<bool>> token) const {
    Deadline d = *this;
    d.cancel_ = std::move(token);
    return d;
  }

  /// Whether this deadline can ever expire (time-limited or cancelable).
  bool limited() const { return limited_ || cancel_ != nullptr; }

  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  bool expired() const {
    if (cancelled()) return true;
    if (!limited_) return false;
    IFET_DET_ALLOW("expiry checks read the clock; a timeout yields a typed "
                   "DeadlineExceeded, never different result bytes");
    return Clock::now() >= when_;
  }

  /// Remaining budget in milliseconds (+inf when unlimited, 0 when
  /// expired or cancelled).
  double remaining_ms() const {
    if (cancelled()) return 0.0;
    if (!limited_) return std::numeric_limits<double>::infinity();
    IFET_DET_ALLOW("remaining-budget reads the clock; used only to cap "
                   "sleeps and waits, never to derive result bytes");
    const auto left = std::chrono::duration<double, std::milli>(
        when_ - Clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }

  Clock::time_point when() const { return when_; }

  /// Raise the typed DeadlineExceeded when the budget is gone. `what`
  /// names the wait that gave up (for the client-visible error text).
  void check(const char* what) const {
    if (!limited()) return;
    if (expired()) {
      throw DeadlineExceeded(std::string("deadline exceeded: ") + what +
                             (cancelled() ? " (cancelled)" : ""));
    }
  }

  /// Perform ONE bounded block on `cv` (the caller re-checks its predicate
  /// in its own loop, where guarded-member access is visible to the
  /// thread-safety analysis). Time-limited deadlines wait until the expiry
  /// point; cancel-only deadlines poll at a coarse period (cancellation is
  /// a teardown courtesy, not a latency contract); unlimited deadlines
  /// block exactly like a plain cv wait.
  template <typename Cv, typename Lockable>
  void wait_once(Cv& cv, Lockable& lock) const {
    if (limited_) {
      cv.wait_until(lock, when_);
    } else if (cancel_ != nullptr) {
      cv.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      cv.wait(lock);
    }
  }

 private:
  Clock::time_point when_{};
  bool limited_ = false;
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

/// RAII thread-local deadline context. The innermost live scope on the
/// current thread is what Deadline::current() answers; scopes nest (an
/// inner scope may tighten, and at destruction the outer one is visible
/// again). The thread-local itself is a raw pointer to the stack frame —
/// trivially destructible, so it is safe through program teardown like
/// detail::held_mutex_ranks().
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline deadline)
      : deadline_(std::move(deadline)), previous_(top()) {
    top() = this;
  }
  ~DeadlineScope() { top() = previous_; }

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// The calling thread's innermost scoped deadline; unlimited when no
  /// scope is installed (prefetch workers, non-server pipelines).
  static Deadline current() {
    const DeadlineScope* scope = top();
    return scope != nullptr ? scope->deadline_ : Deadline::unlimited();
  }

 private:
  static const DeadlineScope*& top() {
    thread_local const DeadlineScope* current_scope = nullptr;
    return current_scope;
  }

  Deadline deadline_;
  const DeadlineScope* previous_;
};

}  // namespace ifet
