# CMake generated Testfile for 
# Source directory: /root/repo/tests/stress
# Build directory: /root/repo/build-tsan/tests/stress
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stress_thread_pool_test "/root/repo/build-tsan/tests/stress/stress_thread_pool_test")
set_tests_properties(stress_thread_pool_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/stress/CMakeLists.txt;4;ifet_add_test;/root/repo/tests/stress/CMakeLists.txt;0;")
add_test(stress_region_grow_test "/root/repo/build-tsan/tests/stress/stress_region_grow_test")
set_tests_properties(stress_region_grow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/stress/CMakeLists.txt;5;ifet_add_test;/root/repo/tests/stress/CMakeLists.txt;0;")
add_test(stress_classifier_test "/root/repo/build-tsan/tests/stress/stress_classifier_test")
set_tests_properties(stress_classifier_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/stress/CMakeLists.txt;6;ifet_add_test;/root/repo/tests/stress/CMakeLists.txt;0;")
