#include "volume/volume.hpp"

namespace ifet {

std::size_t mask_count(const Mask& mask) {
  std::size_t n = 0;
  for (auto v : mask.data()) n += (v != 0);
  return n;
}

namespace {
Mask binary_op(const Mask& a, const Mask& b, bool (*op)(bool, bool)) {
  IFET_REQUIRE(a.dims() == b.dims(), "mask op: dimension mismatch");
  Mask out(a.dims());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = op(a[i] != 0, b[i] != 0) ? 1 : 0;
  }
  return out;
}
}  // namespace

Mask mask_and(const Mask& a, const Mask& b) {
  return binary_op(a, b, [](bool x, bool y) { return x && y; });
}

Mask mask_or(const Mask& a, const Mask& b) {
  return binary_op(a, b, [](bool x, bool y) { return x || y; });
}

Mask mask_subtract(const Mask& a, const Mask& b) {
  return binary_op(a, b, [](bool x, bool y) { return x && !y; });
}

}  // namespace ifet
