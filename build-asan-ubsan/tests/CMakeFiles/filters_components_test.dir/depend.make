# Empty dependencies file for filters_components_test.
# This may be replaced when dependencies are built.
