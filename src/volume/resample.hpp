// Resampling and level-of-detail pyramids.
//
// Paper Sec 4.3: the viable way to specify feature size is to "let the
// scientist see [the] 4D flow field from different views and at different
// levels of details, and interactively select the features with the
// desired sizes". These helpers provide those levels: box-filtered
// downsampling (each coarse voxel averages its 2x2x2 fine block) and
// trilinear upsampling to arbitrary target dims.
#pragma once

#include <vector>

#include "volume/volume.hpp"

namespace ifet {

/// Halve each dimension (rounding up); coarse voxels average the covered
/// fine voxels (partial blocks at the borders average what exists).
VolumeF downsample2(const VolumeF& volume);

/// Trilinear resample to arbitrary target dims.
VolumeF resample(const VolumeF& volume, Dims target);

/// Level-of-detail pyramid: level 0 is the input, each following level is
/// downsample2 of the previous, ending when any axis reaches 1.
/// `max_levels` caps the count (0 = no cap).
std::vector<VolumeF> build_lod_pyramid(const VolumeF& volume,
                                       int max_levels = 0);

/// Downsample a mask: a coarse voxel is set when at least `threshold`
/// fraction of its fine voxels are set (0.5 = majority vote).
Mask downsample2_mask(const Mask& mask, double threshold = 0.5);

}  // namespace ifet
