file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vortex_track.dir/bench_fig9_vortex_track.cpp.o"
  "CMakeFiles/bench_fig9_vortex_track.dir/bench_fig9_vortex_track.cpp.o.d"
  "bench_fig9_vortex_track"
  "bench_fig9_vortex_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vortex_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
