#include "session/session.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

PaintingSession::PaintingSession(const VolumeSequence& sequence,
                                 const SessionConfig& config)
    : sequence_(sequence),
      config_(config),
      classifier_(std::make_unique<DataSpaceClassifier>(
          sequence.num_steps(), sequence.value_range().first,
          sequence.value_range().second, config.classifier)) {}

void PaintingSession::add_to_classifier(
    int step, const std::vector<PaintedVoxel>& painted) {
  // Sequence overload: out-of-core sequences keep only a (sequence, step)
  // reference instead of a private copy of the key frame.
  classifier_->add_samples(sequence_, step, painted);
  painted_.insert(painted_.end(), painted.begin(), painted.end());
}

std::size_t PaintingSession::paint(int step, const PaintStroke& stroke) {
  IFET_REQUIRE(stroke.axis >= 0 && stroke.axis <= 2,
               "paint: axis must be 0..2");
  IFET_REQUIRE(stroke.radius >= 0.0, "paint: negative brush radius");
  const Dims d = sequence_.dims();
  const int r = static_cast<int>(std::ceil(stroke.radius));
  std::vector<PaintedVoxel> painted;
  for (int dv = -r; dv <= r; ++dv) {
    for (int du = -r; du <= r; ++du) {
      if (du * du + dv * dv > stroke.radius * stroke.radius) continue;
      int col = static_cast<int>(std::lround(stroke.u)) + du;
      int row = static_cast<int>(std::lround(stroke.v)) + dv;
      Index3 p;
      switch (stroke.axis) {
        case 0: p = {stroke.slice, col, row}; break;
        case 1: p = {col, stroke.slice, row}; break;
        default: p = {col, row, stroke.slice}; break;
      }
      if (!d.contains(p)) continue;
      painted.push_back(PaintedVoxel{p, step, stroke.certainty});
    }
  }
  add_to_classifier(step, painted);
  return painted.size();
}

std::size_t PaintingSession::select_unwanted_region(int step, Index3 box_lo,
                                                    Index3 box_hi) {
  const Dims d = sequence_.dims();
  IFET_REQUIRE(d.contains(box_lo) && d.contains(box_hi),
               "select_unwanted_region: box outside the volume");
  IFET_REQUIRE(box_lo.x <= box_hi.x && box_lo.y <= box_hi.y &&
                   box_lo.z <= box_hi.z,
               "select_unwanted_region: inverted box");
  std::vector<PaintedVoxel> painted;
  for (int k = box_lo.z; k <= box_hi.z; ++k) {
    for (int j = box_lo.y; j <= box_hi.y; ++j) {
      for (int i = box_lo.x; i <= box_hi.x; ++i) {
        painted.push_back(PaintedVoxel{Index3{i, j, k}, step, 0.0});
      }
    }
  }
  add_to_classifier(step, painted);
  return painted.size();
}

double PaintingSession::train_idle(double budget_ms) {
  return classifier_->train_for(budget_ms);
}

double PaintingSession::train_epochs(int epochs) {
  return classifier_->train(epochs);
}

std::vector<float> PaintingSession::feedback_slice(int step, int axis,
                                                   int slice) const {
  return classifier_->classify_slice(sequence_, step, axis, slice);
}

VolumeF PaintingSession::feedback_volume(int step) const {
  return classifier_->classify(sequence_, step);
}

ImageRgb8 PaintingSession::feedback_image(int step, int axis,
                                          int slice) const {
  const Dims d = sequence_.dims();
  int width = 0, height = 0;
  switch (axis) {
    case 0: width = d.y; height = d.z; break;
    case 1: width = d.x; height = d.z; break;
    default: width = d.x; height = d.y; break;
  }
  std::vector<float> certainty = feedback_slice(step, axis, slice);
  ImageRgb8 image(width, height);
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      auto c = static_cast<std::uint8_t>(
          clamp(certainty[static_cast<std::size_t>(row) *
                              static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(col)],
                0.0f, 1.0f) *
          255.0f);
      image.set(col, row, c, c, c);
    }
  }
  // Overlay painted samples on this slice: feature green, background red.
  for (const PaintedVoxel& p : painted_) {
    if (p.step != step) continue;
    int pi = 0, col = 0, row = 0;
    switch (axis) {
      case 0: pi = p.voxel.x; col = p.voxel.y; row = p.voxel.z; break;
      case 1: pi = p.voxel.y; col = p.voxel.x; row = p.voxel.z; break;
      default: pi = p.voxel.z; col = p.voxel.x; row = p.voxel.y; break;
    }
    if (pi != slice) continue;
    if (p.certainty >= 0.5) {
      image.set(col, row, 30, 220, 30);
    } else {
      image.set(col, row, 220, 30, 30);
    }
  }
  return image;
}

ImageRgb8 PaintingSession::render_classified(int step,
                                             const TransferFunction1D& tf,
                                             const ColorMap& colors,
                                             const Camera& camera,
                                             const RenderSettings& settings,
                                             RenderStats* stats) const {
  // Classify once up front (batched, step+1 prefetch hinted), then let the
  // certainty volume gate the TF opacity during compositing.
  VolumeF certainty = classifier_->classify(sequence_, step);
  Raycaster caster(settings);
  return caster.render_classified(sequence_.step(step), certainty, tf,
                                  colors, camera, stats);
}

void PaintingSession::set_properties(const FeatureVectorSpec& spec) {
  classifier_ = classifier_->with_spec(spec);
  // Replay the stroke history under the new spec (grouped per step so each
  // key-frame volume is fetched once).
  std::vector<int> steps;
  for (const auto& p : painted_) {
    if (std::find(steps.begin(), steps.end(), p.step) == steps.end()) {
      steps.push_back(p.step);
    }
  }
  for (int step : steps) {
    std::vector<PaintedVoxel> group;
    for (const auto& p : painted_) {
      if (p.step == step) group.push_back(p);
    }
    classifier_->add_samples(sequence_, step, group);
  }
}

void PaintingSession::derive_shell_radius() {
  classifier_->derive_shell_radius_from_samples(sequence_.dims());
}

}  // namespace ifet
