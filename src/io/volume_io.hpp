// Volume file I/O.
//
// Two formats:
//  * raw  — headerless float32 stream in x-fastest order (the convention of
//           the public flow data sets the paper uses; caller supplies dims).
//           Headerless means no room for a checksum: raw reads always count
//           as unverified.
//  * .vol — the raw payload preceded by a one-line ASCII header
//           "ifet-vol <dx> <dy> <dz> crc32 <sum>\n" so files are
//           self-describing and the payload is verifiable. Readers accept
//           the legacy checksum-less header "ifet-vol <dx> <dy> <dz>\n"
//           too (the payload then loads unverified; see io/checksum.hpp).
// Byte order is host order (the library targets a single machine, like the
// paper's workstation pipeline).
//
// Failures throw the typed taxonomy of util/io_error.hpp: NotFoundError
// when the file cannot be opened, CorruptDataError for bad headers,
// truncated payloads, and checksum mismatches (docs/ROBUSTNESS.md).
#pragma once

#include <string>

#include "volume/volume.hpp"

namespace ifet {

/// Write headerless float32 data.
void write_raw(const VolumeF& volume, const std::string& path);

/// Read headerless float32 data of known dimensions.
VolumeF read_raw(const std::string& path, Dims dims);

/// Write self-describing .vol file. `with_checksum = false` writes the
/// legacy header (tests pin the backward-compatibility path with it).
void write_vol(const VolumeF& volume, const std::string& path,
               bool with_checksum = true);

/// Read self-describing .vol file (verifying the checksum when present).
VolumeF read_vol(const std::string& path);

}  // namespace ifet
