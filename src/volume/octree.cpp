#include "volume/octree.hpp"

#include <algorithm>

namespace ifet {

namespace {
int enclosing_power_of_two(const Dims& d) {
  int size = 1;
  while (size < d.x || size < d.y || size < d.z) size *= 2;
  return size;
}
}  // namespace

MaskOctree::MaskOctree(const Mask& mask) : dims_(mask.dims()) {
  root_size_ = enclosing_power_of_two(dims_);
  // Indices 0/1 are the kEmpty/kFull sentinels; keep placeholder slots so
  // child ids can be compared against them directly.
  nodes_.resize(2, Node{});
  root_ = build(mask, 0, 0, 0, root_size_);
  voxel_count_ = mask_count(mask);
}

std::uint32_t MaskOctree::build(const Mask& mask, int x0, int y0, int z0,
                                int size) {
  // Regions fully outside the volume are empty (padding).
  if (x0 >= dims_.x || y0 >= dims_.y || z0 >= dims_.z) return kEmpty;
  if (size == 1) {
    return mask[mask.linear_index(x0, y0, z0)] ? kFull : kEmpty;
  }
  const int half = size / 2;
  std::uint32_t child[8];
  bool all_empty = true, all_full = true;
  for (int oct = 0; oct < 8; ++oct) {
    child[oct] = build(mask, x0 + (oct & 1 ? half : 0),
                       y0 + (oct & 2 ? half : 0),
                       z0 + (oct & 4 ? half : 0), half);
    all_empty = all_empty && child[oct] == kEmpty;
    all_full = all_full && child[oct] == kFull;
  }
  if (all_empty) return kEmpty;
  if (all_full) return kFull;
  Node node;
  std::copy(child, child + 8, node.child);
  nodes_.push_back(node);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

bool MaskOctree::at(int i, int j, int k) const {
  if (!dims_.contains(i, j, k)) return false;
  std::uint32_t node = root_;
  int size = root_size_;
  int x0 = 0, y0 = 0, z0 = 0;
  while (true) {
    if (node == kEmpty) return false;
    if (node == kFull) return true;
    const int half = size / 2;
    int oct = 0;
    if (i >= x0 + half) {
      oct |= 1;
      x0 += half;
    }
    if (j >= y0 + half) {
      oct |= 2;
      y0 += half;
    }
    if (k >= z0 + half) {
      oct |= 4;
      z0 += half;
    }
    node = nodes_[node].child[oct];
    size = half;
  }
}

void MaskOctree::fill_region(Mask& out, std::uint32_t node, int x0, int y0,
                             int z0, int size) const {
  if (node == kEmpty) return;
  if (node == kFull) {
    // Full regions are always entirely inside the volume (padding voxels
    // are empty by construction), but clamp defensively.
    int x1 = std::min(x0 + size, dims_.x);
    int y1 = std::min(y0 + size, dims_.y);
    int z1 = std::min(z0 + size, dims_.z);
    for (int k = z0; k < z1; ++k) {
      for (int j = y0; j < y1; ++j) {
        for (int i = x0; i < x1; ++i) {
          out[out.linear_index(i, j, k)] = 1;
        }
      }
    }
    return;
  }
  const int half = size / 2;
  for (int oct = 0; oct < 8; ++oct) {
    fill_region(out, nodes_[node].child[oct], x0 + (oct & 1 ? half : 0),
                y0 + (oct & 2 ? half : 0), z0 + (oct & 4 ? half : 0), half);
  }
}

Mask MaskOctree::to_mask() const {
  Mask out(dims_);
  fill_region(out, root_, 0, 0, 0, root_size_);
  return out;
}

std::size_t MaskOctree::overlap_nodes(const MaskOctree& a, std::uint32_t na,
                                      const MaskOctree& b, std::uint32_t nb,
                                      int x0, int y0, int z0, int size,
                                      const Dims& clip) {
  if (na == kEmpty || nb == kEmpty) return 0;
  if (na == kFull && nb == kFull) {
    // Full nodes never extend past the volume, so the region volume is the
    // overlap; clip anyway for safety.
    std::size_t dx = static_cast<std::size_t>(
        std::max(0, std::min(x0 + size, clip.x) - x0));
    std::size_t dy = static_cast<std::size_t>(
        std::max(0, std::min(y0 + size, clip.y) - y0));
    std::size_t dz = static_cast<std::size_t>(
        std::max(0, std::min(z0 + size, clip.z) - z0));
    return dx * dy * dz;
  }
  const int half = size / 2;
  std::size_t total = 0;
  for (int oct = 0; oct < 8; ++oct) {
    std::uint32_t ca = (na == kFull) ? kFull : a.nodes_[na].child[oct];
    std::uint32_t cb = (nb == kFull) ? kFull : b.nodes_[nb].child[oct];
    total += overlap_nodes(a, ca, b, cb, x0 + (oct & 1 ? half : 0),
                           y0 + (oct & 2 ? half : 0),
                           z0 + (oct & 4 ? half : 0), half, clip);
  }
  return total;
}

std::size_t MaskOctree::overlap(const MaskOctree& a, const MaskOctree& b) {
  IFET_REQUIRE(a.dims_ == b.dims_, "MaskOctree::overlap: dims mismatch");
  return overlap_nodes(a, a.root_, b, b.root_, 0, 0, 0, a.root_size_,
                       a.dims_);
}

}  // namespace ifet
