# Empty compiler generated dependencies file for ifet_core.
# This may be replaced when dependencies are built.
