file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_engines.dir/bench_ml_engines.cpp.o"
  "CMakeFiles/bench_ml_engines.dir/bench_ml_engines.cpp.o.d"
  "bench_ml_engines"
  "bench_ml_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
