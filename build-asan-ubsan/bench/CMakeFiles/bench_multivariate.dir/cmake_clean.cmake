file(REMOVE_RECURSE
  "CMakeFiles/bench_multivariate.dir/bench_multivariate.cpp.o"
  "CMakeFiles/bench_multivariate.dir/bench_multivariate.cpp.o.d"
  "bench_multivariate"
  "bench_multivariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
