// Section 7 performance reproduction: data-space classification cost.
//
// Paper: "it takes 10 seconds to classify a 256x256x256 data set" with the
// trained network, vs 6 fps rendering — i.e. whole-volume classification is
// ~two orders of magnitude more expensive than a rendered frame and is done
// once, not per frame. We measure per-voxel classification cost across
// volume sizes (linear scaling) and shell sizes (vector-width scaling), and
// time single-slice classification (the interface's interactive feedback
// path, which must be far cheaper than the full volume).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/dataspace.hpp"
#include "flowsim/datasets.hpp"

namespace {

using namespace ifet;

std::unique_ptr<DataSpaceClassifier> make_trained_classifier(
    const VolumeF& volume, int shell_samples) {
  DataSpaceConfig cfg;
  cfg.spec.shell_samples = shell_samples;
  auto clf = std::make_unique<DataSpaceClassifier>(1, 0.0, 1.0, cfg);
  std::vector<PaintedVoxel> painted;
  const Dims d = volume.dims();
  for (int s = 0; s < 200; ++s) {
    Index3 p{(s * 7) % d.x, (s * 13) % d.y, (s * 29) % d.z};
    painted.push_back({p, 0, s % 2 == 0 ? 1.0 : 0.0});
  }
  clf->add_samples(volume, 0, painted);
  clf->train(50);
  return clf;
}

/// Whole-volume classification across grid sizes (expect linear scaling in
/// voxel count; the paper's 10 s for 256^3 is this operation).
void BM_ClassifyVolume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReionizationConfig cfg;
  cfg.dims = Dims{n, n, n};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    VolumeF certainty = clf->classify(volume, 0);
    benchmark::DoNotOptimize(certainty.data().data());
  }
  state.counters["voxels_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(volume.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClassifyVolume)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Shell-size ablation of the classification cost (Sec 6: fewer properties
/// -> smaller network -> faster extraction).
void BM_ClassifyShellWidth(benchmark::State& state) {
  const int shell = static_cast<int>(state.range(0));
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, shell);
  for (auto _ : state) {
    VolumeF certainty = clf->classify(volume, 0);
    benchmark::DoNotOptimize(certainty.data().data());
  }
}
BENCHMARK(BM_ClassifyShellWidth)->Arg(6)->Arg(14)->Arg(26)
    ->Unit(benchmark::kMillisecond);

/// Single-slice feedback (Sec 6's interactive path).
void BM_ClassifySlice(benchmark::State& state) {
  ReionizationConfig cfg;
  cfg.dims = Dims{64, 64, 64};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    auto slice = clf->classify_slice(volume, 0, 2, 32);
    benchmark::DoNotOptimize(slice.data());
  }
}
BENCHMARK(BM_ClassifySlice)->Unit(benchmark::kMillisecond);

/// Training epoch cost on a paint-scale training set (runs in the idle
/// loop; must be interactive).
void BM_TrainEpoch(benchmark::State& state) {
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->train(1));
  }
}
BENCHMARK(BM_TrainEpoch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
