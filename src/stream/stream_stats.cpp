#include "stream/stream_stats.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ifet {

std::string StreamStats::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "stream: " << hits << " hits / " << misses << " misses ("
     << 100.0 * hit_rate() << "% hit rate), " << evictions << " evictions, ";
  if (budget_bytes == 0) {
    os << bytes_resident / 1024 << " KiB resident (unlimited budget), ";
  } else {
    os << bytes_resident / 1024 << " / " << budget_bytes / 1024
       << " KiB resident (peak " << peak_bytes_resident / 1024 << "), ";
  }
  os << "prefetch " << prefetch_hits << "/" << (prefetch_hits + demand_loads)
     << " (" << 100.0 * prefetch_hit_rate() << "% of loads), derived "
     << derived_hits << "/" << (derived_hits + derived_misses) << " memoized";
  if (retries != 0 || load_failures != 0 || checksum_failures != 0 ||
      quarantined_steps != 0 || skipped_fetches != 0 ||
      nearest_good_substitutions != 0) {
    os << ", faults: " << retries << " retries, " << load_failures
       << " exhausted, " << checksum_failures << " checksum failures, "
       << quarantined_steps << " quarantined";
    if (skipped_fetches != 0) os << ", " << skipped_fetches << " skipped";
    if (nearest_good_substitutions != 0) {
      os << ", " << nearest_good_substitutions << " substituted";
    }
  }
  if (checksum_unverified != 0) {
    // Flag legacy unverified payloads loudly: silent corruption is only
    // caught on the checksummed paths.
    os << ", checksums " << checksum_verified << " ok / "
       << checksum_unverified << " UNVERIFIED";
  }
  if (commands_rejected != 0 || commands_shed != 0 ||
      deadline_exceeded != 0 || pressure_transitions != 0) {
    os << ", overload: " << commands_rejected << " rejected, "
       << commands_shed << " shed, " << deadline_exceeded
       << " deadline-exceeded, " << pressure_transitions
       << " pressure transitions";
  }
  return os.str();
}

StreamStats& StreamStats::merge(const StreamStats& other) {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  prefetch_issued += other.prefetch_issued;
  prefetch_hits += other.prefetch_hits;
  demand_loads += other.demand_loads;
  derived_hits += other.derived_hits;
  derived_misses += other.derived_misses;
  if (other.budget_bytes != 0) budget_bytes = other.budget_bytes;
  if (other.bytes_resident != 0) bytes_resident = other.bytes_resident;
  peak_bytes_resident = std::max(peak_bytes_resident,
                                 other.peak_bytes_resident);
  if (other.steps_resident != 0) steps_resident = other.steps_resident;
  if (other.pinned_steps != 0) pinned_steps = other.pinned_steps;
  demand_decode_seconds += other.demand_decode_seconds;
  prefetch_decode_seconds += other.prefetch_decode_seconds;
  retries += other.retries;
  load_failures += other.load_failures;
  prefetch_failures += other.prefetch_failures;
  checksum_verified += other.checksum_verified;
  checksum_unverified += other.checksum_unverified;
  checksum_failures += other.checksum_failures;
  // Gauge, not a counter: only the VolumeStore layer reports it.
  if (other.quarantined_steps != 0) quarantined_steps = other.quarantined_steps;
  skipped_fetches += other.skipped_fetches;
  nearest_good_substitutions += other.nearest_good_substitutions;
  commands_rejected += other.commands_rejected;
  commands_shed += other.commands_shed;
  deadline_exceeded += other.deadline_exceeded;
  pressure_transitions += other.pressure_transitions;
  return *this;
}

void SharedStreamStats::add(const StreamStats& delta) {
  hits_.fetch_add(delta.hits, std::memory_order_relaxed);
  misses_.fetch_add(delta.misses, std::memory_order_relaxed);
  derived_hits_.fetch_add(delta.derived_hits, std::memory_order_relaxed);
  derived_misses_.fetch_add(delta.derived_misses, std::memory_order_relaxed);
  skipped_fetches_.fetch_add(delta.skipped_fetches,
                             std::memory_order_relaxed);
  nearest_good_substitutions_.fetch_add(delta.nearest_good_substitutions,
                                        std::memory_order_relaxed);
  commands_rejected_.fetch_add(delta.commands_rejected,
                               std::memory_order_relaxed);
  commands_shed_.fetch_add(delta.commands_shed, std::memory_order_relaxed);
  deadline_exceeded_.fetch_add(delta.deadline_exceeded,
                               std::memory_order_relaxed);
  pressure_transitions_.fetch_add(delta.pressure_transitions,
                                  std::memory_order_relaxed);
}

StreamStats SharedStreamStats::snapshot() const {
  StreamStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.derived_hits = derived_hits_.load(std::memory_order_relaxed);
  out.derived_misses = derived_misses_.load(std::memory_order_relaxed);
  out.skipped_fetches = skipped_fetches_.load(std::memory_order_relaxed);
  out.nearest_good_substitutions =
      nearest_good_substitutions_.load(std::memory_order_relaxed);
  out.commands_rejected = commands_rejected_.load(std::memory_order_relaxed);
  out.commands_shed = commands_shed_.load(std::memory_order_relaxed);
  out.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  out.pressure_transitions =
      pressure_transitions_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ifet
