// PASS fixture: the corrected form iterates a std::map (defined order);
// the unordered container is still fine for keyed lookup, which never
// observes hash layout.
#include <map>
#include <string>
#include <unordered_map>

#define IFET_DETERMINISTIC

namespace fixture {

class UsageReport {
 public:
  IFET_DETERMINISTIC double total() const {
    double sum = 0.0;
    for (const auto& kv : ordered_) {  // std::map: defined order
      sum += kv.second;
    }
    return sum + lookup("alpha");
  }

 private:
  double lookup(const std::string& key) const {
    const auto it = index_.find(key);  // keyed lookup: order-free
    return it == index_.end() ? 0.0 : it->second;
  }

  std::map<std::string, double> ordered_;
  std::unordered_map<std::string, double> index_;
};

}  // namespace fixture
