# Empty dependencies file for advisor_workflow.
# This may be replaced when dependencies are built.
