# Empty dependencies file for tf_session_test.
# This may be replaced when dependencies are built.
