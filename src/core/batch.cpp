#include "core/batch.hpp"

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace ifet {

BatchReport run_batch_extraction(const VolumeSource& source, int first,
                                 int last, const ExtractFn& extract) {
  IFET_REQUIRE(first >= 0 && last < source.num_steps() && first <= last,
               "run_batch_extraction: bad step range");
  const std::size_t count = static_cast<std::size_t>(last - first + 1);
  BatchReport report;
  report.steps.resize(count);

  Stopwatch total;
  parallel_for(0, count, [&](std::size_t idx) {
    const int step = first + static_cast<int>(idx);
    Stopwatch watch;
    VolumeF volume = source.generate(step);
    Mask mask = extract(volume, step);
    BatchStepResult& r = report.steps[idx];
    r.step = step;
    r.feature_voxels = mask_count(mask);
    r.seconds = watch.seconds();
  });
  report.wall_seconds = total.seconds();
  for (const auto& r : report.steps) report.cpu_step_seconds += r.seconds;
  return report;
}

BatchRenderReport run_batch_render(const VolumeSource& source, int first,
                                   int last, const RenderFn& render) {
  IFET_REQUIRE(first >= 0 && last < source.num_steps() && first <= last,
               "run_batch_render: bad step range");
  const std::size_t count = static_cast<std::size_t>(last - first + 1);
  BatchRenderReport report;
  report.frames.resize(count);
  Stopwatch total;
  parallel_for(0, count, [&](std::size_t idx) {
    const int step = first + static_cast<int>(idx);
    VolumeF volume = source.generate(step);
    report.frames[idx] = render(volume, step);
  });
  report.wall_seconds = total.seconds();
  return report;
}

}  // namespace ifet
