// Hot-path annotation macros (docs/STATIC_ANALYSIS.md, docs/PERFORMANCE.md).
//
// IFET_HOT marks a function as a steady-state hot path: once warm it must
// not heap-allocate, must not throw, must not do stream I/O, and must not
// acquire a mutex ranked below the hot-path floor. The ifet_lint
// callgraph pass treats every IFET_HOT function as a root, propagates
// reachability over the cross-TU call graph, and fails CI when reachable
// code escapes the contract. At runtime the same contract is enforced by
// util/alloc_guard.hpp's DenyAllocScope in the perf benches.
//
// IFET_HOT_ALLOW(reason) acknowledges an intentional, reviewed escape on
// the next (or same) line — e.g. a one-time warm-up buffer grow, or a
// batch-entry precondition that throws before the steady-state loop
// starts. It compiles to nothing but is part of the code (not a comment),
// so the waiver survives reformatting and shows up in review diffs.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define IFET_HOT __attribute__((hot))
#else
#define IFET_HOT
#endif

// The reason must be a string literal; sizeof keeps it syntactically
// checked without generating code.
#define IFET_HOT_ALLOW(reason) \
  do {                         \
    (void)sizeof(reason);      \
  } while (false)
