// PASS fixture: the corrected form orders by a stable application-level
// id carried in the object, never by where the allocator placed it.
#include <cstdint>

#define IFET_DETERMINISTIC

namespace fixture {

struct Node {
  int id = 0;
};

class Registry {
 public:
  IFET_DETERMINISTIC std::uint64_t order_key(const Node* n) const {
    return static_cast<std::uint64_t>(n->id);  // stable id, not address
  }
};

}  // namespace fixture
