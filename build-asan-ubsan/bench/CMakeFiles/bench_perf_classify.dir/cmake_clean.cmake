file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_classify.dir/bench_perf_classify.cpp.o"
  "CMakeFiles/bench_perf_classify.dir/bench_perf_classify.cpp.o.d"
  "bench_perf_classify"
  "bench_perf_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
