#include "stream/derived_cache.hpp"

#include "util/hot_path.hpp"

namespace ifet {

// The lock is NOT held while `compute` runs: synthesis of one derived
// product routinely consults another (an IATF transfer function reads the
// step's cumulative histogram through this same cache), so computing under
// the lock would self-deadlock — in checked builds the OrderedMutex
// re-entry validator turns that mistake into an immediate ifet::Error
// (tests/concurrency_regression_test.cpp pins the re-entrant case). Two
// threads racing the same cold key may both compute; the first insert wins
// and the duplicate is discarded — wasted work, never wrong results.
template <typename T>
std::shared_ptr<const T> DerivedCache::get_or_compute(
    MemoMap<T> DerivedCache::* map, int step, std::uint64_t params_hash,
    const std::function<T()>& compute, SharedStreamStats* session_stats) {
  const Key key{step, params_hash};
  {
    OrderedMutexLock lock(mutex_);
    auto it = (this->*map).find(key);
    if (it != (this->*map).end()) {
      ++stats_.derived_hits;
      if (session_stats != nullptr) session_stats->count_derived(true);
      return it->second;
    }
    ++stats_.derived_misses;
  }
  if (session_stats != nullptr) session_stats->count_derived(false);
  auto value = std::make_shared<const T>(compute());
  OrderedMutexLock lock(mutex_);
  auto [it, inserted] = (this->*map).emplace(key, std::move(value));
  (void)inserted;
  return it->second;
}

template <typename T>
std::size_t DerivedCache::invalidate_in(MemoMap<T>& map,
                                        std::uint64_t params_hash) {
  std::size_t erased = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first.params == params_hash) {
      it = map.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

IFET_DETERMINISTIC std::shared_ptr<const Histogram> DerivedCache::histogram(
    int step, std::uint64_t params_hash,
    const std::function<Histogram()>& compute,
    SharedStreamStats* session_stats) {
  return get_or_compute(&DerivedCache::hists_, step, params_hash, compute,
                        session_stats);
}

IFET_DETERMINISTIC std::shared_ptr<const CumulativeHistogram>
DerivedCache::cumulative_histogram(
    int step, std::uint64_t params_hash,
    const std::function<CumulativeHistogram()>& compute,
    SharedStreamStats* session_stats) {
  return get_or_compute(&DerivedCache::cumhists_, step, params_hash, compute,
                        session_stats);
}

IFET_DETERMINISTIC std::shared_ptr<const TransferFunction1D>
DerivedCache::transfer_function(
    int step, std::uint64_t params_hash,
    const std::function<TransferFunction1D()>& compute,
    SharedStreamStats* session_stats) {
  return get_or_compute(&DerivedCache::tfs_, step, params_hash, compute,
                        session_stats);
}

std::size_t DerivedCache::invalidate(std::uint64_t params_hash) {
  OrderedMutexLock lock(mutex_);
  std::size_t erased = invalidate_in(hists_, params_hash);
  erased += invalidate_in(cumhists_, params_hash);
  erased += invalidate_in(tfs_, params_hash);
  return erased;
}

template <typename T>
std::size_t DerivedCache::shed_in(MemoMap<T>& map,
                                  std::uint64_t keep_params) {
  std::size_t erased = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first.params != keep_params) {
      it = map.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t DerivedCache::shed_except(std::uint64_t keep_params) {
  OrderedMutexLock lock(mutex_);
  std::size_t erased = shed_in(hists_, keep_params);
  erased += shed_in(cumhists_, keep_params);
  erased += shed_in(tfs_, keep_params);
  return erased;
}

std::size_t DerivedCache::size() const {
  OrderedMutexLock lock(mutex_);
  return hists_.size() + cumhists_.size() + tfs_.size();
}

StreamStats DerivedCache::stats() const {
  OrderedMutexLock lock(mutex_);
  return stats_;
}

}  // namespace ifet
