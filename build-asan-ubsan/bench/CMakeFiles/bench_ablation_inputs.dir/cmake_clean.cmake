file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inputs.dir/bench_ablation_inputs.cpp.o"
  "CMakeFiles/bench_ablation_inputs.dir/bench_ablation_inputs.cpp.o.d"
  "bench_ablation_inputs"
  "bench_ablation_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
