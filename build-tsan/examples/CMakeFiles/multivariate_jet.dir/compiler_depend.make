# Empty compiler generated dependencies file for multivariate_jet.
# This may be replaced when dependencies are built.
