// Prediction–verification feature tracking (the Reinders et al. scheme the
// paper cites in Sec 2): "calculate the basic attributes for the features
// of interest which are used to track features with a prediction and
// verification scheme."
//
// Per step, features are the connected components of the criterion mask.
// The tracker follows one feature: it predicts the next step's attributes
// (centroid by linear motion extrapolation, size assumed continuous) and
// verifies candidate components against the prediction within tolerances.
// Unlike 4D region growing it never touches the time axis voxel-wise —
// each step costs one labeling pass — but it follows a *single* component
// and signals rather than absorbs split events (the comparison
// bench_tracking_methods quantifies this tradeoff against the paper's
// region-growing tracker).
#pragma once

#include <optional>
#include <vector>

#include "core/tracking.hpp"
#include "volume/components.hpp"

namespace ifet {

struct PredictiveTrackerConfig {
  /// Candidate centroid must lie within this many voxels of the prediction.
  double centroid_tolerance = 8.0;
  /// Candidate size must be within [1/ratio, ratio] of the prediction.
  double size_ratio_tolerance = 2.0;
  /// Components below this size are ignored as noise.
  std::size_t min_component_voxels = 4;
};

/// One matched step of a predictive track.
struct PredictedStep {
  int step = 0;
  ComponentInfo component;
  /// Distance between predicted and matched centroid (verification error).
  double prediction_error = 0.0;
  /// Number of candidates that passed verification (>= 2 suggests a split).
  int candidates = 1;
};

struct PredictiveTrack {
  std::vector<PredictedStep> steps;
  /// Step at which verification failed (-1 when tracked to the end).
  int lost_at = -1;

  bool reached_end(int last_step) const {
    return !steps.empty() && steps.back().step == last_step;
  }
  /// Steps with more than one verified candidate (potential splits).
  std::vector<int> ambiguous_steps() const;
};

class PredictiveTracker {
 public:
  PredictiveTracker(const VolumeSequence& sequence,
                    const TrackingCriterion& criterion,
                    const PredictiveTrackerConfig& config = {});

  /// Components of one step under the criterion (size-filtered).
  std::vector<ComponentInfo> components_at(int step) const;

  /// Track forward from the component containing `seed` at `seed_step`
  /// through `last_step` (inclusive).
  PredictiveTrack track(Index3 seed, int seed_step, int last_step) const;

 private:
  Mask criterion_mask(int step) const;

  const VolumeSequence& sequence_;
  const TrackingCriterion& criterion_;
  PredictiveTrackerConfig config_;
};

}  // namespace ifet
