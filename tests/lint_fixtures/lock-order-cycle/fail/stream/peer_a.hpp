// Fixture (should FAIL): PeerA and PeerB call each other's locking
// methods while holding their own mutex — a cross-TU acquisition cycle.
#pragma once
#include <mutex>

class PeerB;

class PeerA {
 public:
  void poke();
  void touch();

 private:
  std::mutex mutex_;
  PeerB* peer_;
};
