#include <gtest/gtest.h>

#include "core/dataspace.hpp"
#include "core/feature_vector.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/components.hpp"

namespace ifet {
namespace {

using testing::blob_volume;
using testing::box_mask;

TEST(FeatureVectorSpec, WidthCountsComponents) {
  FeatureVectorSpec spec;  // value + 14 shell + 3 pos + time
  EXPECT_EQ(spec.width(), 19);
  spec.use_gradient = true;
  EXPECT_EQ(spec.width(), 20);
  spec.use_shell = false;
  EXPECT_EQ(spec.width(), 6);
  spec.use_position = false;
  spec.use_time = false;
  spec.use_gradient = false;
  EXPECT_EQ(spec.width(), 1);
}

TEST(FeatureVectorSpec, ComponentNamesAlignWithWidth) {
  FeatureVectorSpec spec;
  spec.shell_samples = 6;
  auto names = spec.component_names();
  EXPECT_EQ(static_cast<int>(names.size()), spec.width());
  EXPECT_EQ(names.front(), "value");
  EXPECT_EQ(names.back(), "time");
}

TEST(ShellDirections, UnitLengthAndDistinct) {
  for (int count : {6, 14, 26}) {
    auto dirs = shell_directions(count);
    ASSERT_EQ(static_cast<int>(dirs.size()), count);
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      EXPECT_NEAR(dirs[i].norm(), 1.0, 1e-12);
      for (std::size_t j = i + 1; j < dirs.size(); ++j) {
        EXPECT_GT((dirs[i] - dirs[j]).norm(), 1e-6);
      }
    }
  }
  EXPECT_THROW(shell_directions(0), Error);
  EXPECT_THROW(shell_directions(27), Error);
}

TEST(AssembleFeatureVector, ValuesNormalizedToUnit) {
  VolumeF v = testing::random_volume(Dims{12, 12, 12}, 5, 0.0, 10.0);
  FeatureContext ctx{&v, 3, 10, 0.0, 10.0};
  FeatureVectorSpec spec;
  spec.use_gradient = true;
  auto fv = assemble_feature_vector(spec, ctx, 6, 6, 6);
  ASSERT_EQ(static_cast<int>(fv.size()), spec.width());
  for (double x : fv) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(AssembleFeatureVector, ShellSeesNeighborhoodNotCenter) {
  // A bright center voxel in a dark volume: the value component is high,
  // every shell sample (at radius 3) is low.
  VolumeF v(Dims{16, 16, 16}, 0.0f);
  v.at(8, 8, 8) = 1.0f;
  FeatureContext ctx{&v, 0, 1, 0.0, 1.0};
  FeatureVectorSpec spec;
  spec.use_position = false;
  spec.use_time = false;
  spec.shell_radius = 3.0;
  auto fv = assemble_feature_vector(spec, ctx, 8, 8, 8);
  EXPECT_NEAR(fv[0], 1.0, 1e-6);
  for (std::size_t s = 1; s < fv.size(); ++s) {
    EXPECT_LT(fv[s], 0.1) << "shell sample " << s;
  }
}

TEST(AssembleFeatureVector, TimeComponentNormalized) {
  VolumeF v(Dims{8, 8, 8});
  FeatureVectorSpec spec;
  spec.use_shell = false;
  spec.use_position = false;
  FeatureContext ctx{&v, 5, 11, 0.0, 1.0};
  auto fv = assemble_feature_vector(spec, ctx, 0, 0, 0);
  ASSERT_EQ(fv.size(), 2u);  // value + time
  EXPECT_DOUBLE_EQ(fv[1], 0.5);
}

TEST(DeriveShellRadius, ScalesWithFeatureSize) {
  Dims d{32, 32, 32};
  Mask tiny = box_mask(d, {10, 10, 10}, {11, 11, 11});
  Mask big = box_mask(d, {8, 8, 8}, {19, 19, 19});
  double r_tiny = derive_shell_radius(tiny);
  double r_big = derive_shell_radius(big);
  EXPECT_LT(r_tiny, r_big);
  EXPECT_GE(r_tiny, 1.5);
  EXPECT_LE(r_big, 6.0);
}

TEST(DeriveShellRadius, EmptyMaskGivesDefault) {
  EXPECT_DOUBLE_EQ(derive_shell_radius(Mask(Dims{8, 8, 8})), 3.0);
}

std::vector<PaintedVoxel> paint_box(Index3 lo, Index3 hi, int step,
                                    double certainty) {
  std::vector<PaintedVoxel> out;
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        out.push_back({Index3{i, j, k}, step, certainty});
      }
    }
  }
  return out;
}

TEST(DataSpaceClassifier, LearnsValueSeparableClasses) {
  Dims d{16, 16, 16};
  VolumeF v(d, 0.1f);
  for (int k = 4; k < 12; ++k) {
    for (int j = 4; j < 12; ++j) {
      for (int i = 4; i < 12; ++i) v.at(i, j, k) = 0.9f;
    }
  }
  DataSpaceConfig cfg;
  cfg.spec.use_shell = false;
  cfg.spec.use_position = false;
  cfg.spec.use_time = false;
  DataSpaceClassifier clf(1, 0.0, 1.0, cfg);
  clf.add_samples(v, 0, paint_box({5, 5, 5}, {7, 7, 7}, 0, 1.0));
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {2, 2, 2}, 0, 0.0));
  clf.train(300);
  EXPECT_GT(clf.classify_voxel(v, 0, 8, 8, 8), 0.8);
  EXPECT_LT(clf.classify_voxel(v, 0, 14, 14, 14), 0.2);
}

TEST(DataSpaceClassifier, ShellSeparatesSizesAtEqualValue) {
  // Two structures with the SAME voxel value; one large, one tiny. Value
  // alone cannot separate them — the shell can (paper Sec 4.3).
  Dims d{24, 24, 24};
  VolumeF v(d, 0.0f);
  for (int k = 4; k < 14; ++k) {  // large 10^3 block
    for (int j = 4; j < 14; ++j) {
      for (int i = 4; i < 14; ++i) v.at(i, j, k) = 0.8f;
    }
  }
  v.at(20, 20, 20) = 0.8f;  // tiny one-voxel feature
  v.at(20, 20, 4) = 0.8f;
  v.at(4, 20, 20) = 0.8f;

  DataSpaceConfig cfg;
  cfg.spec.use_position = false;
  cfg.spec.use_time = false;
  cfg.spec.shell_radius = 2.0;
  DataSpaceClassifier clf(1, 0.0, 1.0, cfg);
  // Positive: interior of the large block. Negative: the tiny features.
  clf.add_samples(v, 0, paint_box({6, 6, 6}, {11, 11, 11}, 0, 1.0));
  clf.add_samples(v, 0, {{Index3{20, 20, 20}, 0, 0.0},
                         {Index3{20, 20, 4}, 0, 0.0},
                         {Index3{4, 20, 20}, 0, 0.0}});
  clf.train(500);
  // Interior of large block: shell sees 0.8 everywhere -> feature.
  EXPECT_GT(clf.classify_voxel(v, 0, 9, 9, 9), 0.7);
  // Tiny feature: same value, empty shell -> not the feature.
  EXPECT_LT(clf.classify_voxel(v, 0, 20, 20, 20), 0.3);
}

TEST(DataSpaceClassifier, ClassifyMatchesClassifyVoxel) {
  Dims d{8, 8, 8};
  VolumeF v = testing::random_volume(d, 6);
  DataSpaceConfig cfg;
  cfg.spec.shell_samples = 6;
  DataSpaceClassifier clf(2, 0.0, 1.0, cfg);
  clf.add_samples(v, 1, paint_box({0, 0, 0}, {1, 1, 1}, 1, 1.0));
  clf.train(20);
  VolumeF certainty = clf.classify(v, 1);
  for (int k = 0; k < d.z; k += 3) {
    for (int j = 0; j < d.y; j += 3) {
      for (int i = 0; i < d.x; i += 3) {
        EXPECT_NEAR(certainty.at(i, j, k), clf.classify_voxel(v, 1, i, j, k),
                    1e-6);
      }
    }
  }
}

TEST(DataSpaceClassifier, ClassifySliceMatchesVolume) {
  Dims d{8, 10, 12};
  VolumeF v = testing::random_volume(d, 16);
  DataSpaceClassifier clf(1, 0.0, 1.0);
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {1, 1, 1}, 0, 1.0));
  clf.train(10);
  VolumeF full = clf.classify(v, 0);
  // Axis 2 (Z): width=dx, height=dy.
  auto slice = clf.classify_slice(v, 0, 2, 5);
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      EXPECT_NEAR(slice[static_cast<std::size_t>(j) * d.x + i],
                  full.at(i, j, 5), 1e-6);
    }
  }
  // Axis 0 (X): width=dy, height=dz.
  auto slice_x = clf.classify_slice(v, 0, 0, 3);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      EXPECT_NEAR(slice_x[static_cast<std::size_t>(k) * d.y + j],
                  full.at(3, j, k), 1e-6);
    }
  }
}

TEST(DataSpaceClassifier, ClassifyMaskThresholds) {
  Dims d{8, 8, 8};
  VolumeF v = testing::random_volume(d, 26);
  DataSpaceClassifier clf(1, 0.0, 1.0);
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {2, 2, 2}, 0, 1.0));
  clf.train(10);
  VolumeF certainty = clf.classify(v, 0);
  Mask m = clf.classify_mask(v, 0, 0.5);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i] != 0, certainty[i] >= 0.5f);
  }
}

TEST(DataSpaceClassifier, ValidatesInputs) {
  DataSpaceClassifier clf(3, 0.0, 1.0);
  VolumeF v(Dims{8, 8, 8});
  EXPECT_THROW(clf.train(1), Error);  // no samples yet
  EXPECT_THROW(clf.add_samples(v, 5, {{Index3{0, 0, 0}, 5, 1.0}}), Error);
  EXPECT_THROW(clf.add_samples(v, 0, {{Index3{9, 0, 0}, 0, 1.0}}), Error);
  EXPECT_THROW(clf.add_samples(v, 0, {{Index3{0, 0, 0}, 1, 1.0}}), Error);
  EXPECT_THROW(DataSpaceClassifier(0, 0.0, 1.0), Error);
  EXPECT_THROW(DataSpaceClassifier(3, 1.0, 1.0), Error);
}

TEST(DataSpaceClassifier, DeriveShellRadiusRebuildsSamples) {
  Dims d{32, 32, 32};
  VolumeF v(d, 0.2f);
  DataSpaceConfig cfg;
  cfg.spec.shell_radius = 3.0;
  DataSpaceClassifier clf(1, 0.0, 1.0, cfg);
  clf.add_samples(v, 0, paint_box({8, 8, 8}, {19, 19, 19}, 0, 1.0));
  std::size_t before = clf.training_samples();
  clf.derive_shell_radius_from_samples(d);
  EXPECT_EQ(clf.training_samples(), before);
  EXPECT_NE(clf.shell_radius(), 3.0);  // derived from a 12-wide feature
}

TEST(DataSpaceClassifier, WithSpecTransfersSharedWeights) {
  DataSpaceConfig cfg;
  cfg.spec.shell_samples = 6;
  DataSpaceClassifier clf(1, 0.0, 1.0, cfg);
  FeatureVectorSpec smaller = cfg.spec;
  smaller.use_position = false;
  auto resized = clf.with_spec(smaller);
  EXPECT_EQ(resized->network().num_inputs(), smaller.width());
  // The "value" input weight survives the resize.
  EXPECT_DOUBLE_EQ(resized->network().weights()[0][0][0],
                   clf.network().weights()[0][0][0]);
  // Hidden->output weights copied verbatim.
  EXPECT_EQ(resized->network().weights()[1], clf.network().weights()[1]);
}

}  // namespace
}  // namespace ifet
