# Empty dependencies file for ifet_render.
# This may be replaced when dependencies are built.
