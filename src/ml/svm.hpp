// Soft-margin kernel SVM trained with (simplified) Sequential Minimal
// Optimization — the Sec 8 alternative engine.
//
// Binary targets; the decision value is mapped to a certainty with a
// logistic link so SVM output is interchangeable with the MLP's sigmoid
// output (the extraction threshold 0.5 corresponds to the decision
// boundary). Training is O(passes * n^2) kernel evaluations, fine at the
// painted-sample scale (hundreds to a few thousand samples).
#pragma once

#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace ifet {

struct SvmConfig {
  double c = 10.0;          ///< Soft-margin penalty.
  double gamma = 2.0;       ///< RBF kernel width: exp(-gamma * |x-y|^2).
  double tolerance = 1e-3;  ///< KKT violation tolerance.
  int max_passes = 8;       ///< Consecutive violation-free sweeps to stop.
  int max_iterations = 20000;  ///< Hard cap on SMO update steps.
};

class SvmClassifier final : public BinaryClassifier {
 public:
  SvmClassifier(int input_width, std::uint64_t seed,
                const SvmConfig& config = {});

  void fit(const TrainingSet& set, int budget) override;
  double predict(std::span<const double> input) const override;
  std::string name() const override { return "svm-rbf"; }

  /// Raw decision value f(x) = sum_i alpha_i y_i K(x_i, x) + b.
  double decision(std::span<const double> input) const;

  /// Number of support vectors after fit (for the cost analysis).
  std::size_t support_vector_count() const { return support_.size(); }

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  int input_width_;
  SvmConfig config_;
  Rng rng_;
  struct Support {
    std::vector<double> x;
    double alpha_y;  // alpha_i * y_i
  };
  std::vector<Support> support_;
  double bias_ = 0.0;
};

}  // namespace ifet
