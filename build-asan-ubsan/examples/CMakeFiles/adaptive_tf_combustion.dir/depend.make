# Empty dependencies file for adaptive_tf_combustion.
# This may be replaced when dependencies are built.
