// PASS fixture: the hot root only touches preallocated storage; cold
// (unannotated, unreachable) code may allocate freely; a reviewed
// warm-up grow is waived with IFET_HOT_ALLOW. A digit-separator literal
// rides along: mis-lexing 1'000'000 as a char literal used to blank the
// rest of the line and corrupt call-graph edges.
#include <cstddef>
#include <vector>

#define IFET_HOT __attribute__((hot))
#define IFET_HOT_ALLOW(reason) \
  do {                         \
    (void)sizeof(reason);      \
  } while (false)

namespace fixture {

class Engine {
 public:
  IFET_HOT double step(std::size_t i, double x) {
    warm(i);
    return accumulate(i, x);
  }

  void rebuild(std::size_t n) {
    history_.assign(n, 0.0);  // cold path: not reachable from the root
    scale_ = 1'000'000;
  }

 private:
  void warm(std::size_t i) {
    if (i >= history_.size()) {
      IFET_HOT_ALLOW("one-time warm-up grow, amortized to zero");
      history_.resize(i + 1);
    }
  }
  double accumulate(std::size_t i, double x) {
    history_[i] = x * scale_;
    return history_[i];
  }

  std::vector<double> history_;
  double scale_ = 1.0;
};

}  // namespace fixture
