file(REMOVE_RECURSE
  "CMakeFiles/iatf_test.dir/iatf_test.cpp.o"
  "CMakeFiles/iatf_test.dir/iatf_test.cpp.o.d"
  "iatf_test"
  "iatf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iatf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
