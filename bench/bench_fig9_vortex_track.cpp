// Figure 9 reproduction: tracking the turbulent vortex from t=50 to t=74.
//
// Paper: "the tracked vortex moves and changes its shape through time and
// splits near the end." Our substrate maps t = 50..74 onto steps 0..24 with
// the split at step 18 (paper t=68). We seed 4D region growing at the
// first step and report, per step, the tracked voxel count, centroid, and
// connected-component count, then verify the split event is detected at the
// right time.
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 9: tracking the turbulent vortex (t=50..74, split "
               "near the end) ===\n";

  TurbulentVortexConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 25;
  cfg.split_step = 18;
  auto source = std::make_shared<TurbulentVortexSource>(cfg);
  CachedSequence seq(source, 6, 256);

  // 0.48 keeps the band above the background (0.12) and the distractor
  // blobs' bulk (peak 0.5) while giving the tracked masks enough spatial
  // extent that the post-split lobes keep overlapping the parent across
  // the meandering path (the paper's temporal-overlap assumption).
  FixedRangeCriterion criterion(0.48, 1.0);
  Tracker tracker(seq, criterion);
  Vec3 c0 = source->lobe_centers(0)[0];
  Index3 seed{static_cast<int>(c0.x * cfg.dims.x),
              static_cast<int>(c0.y * cfg.dims.y),
              static_cast<int>(c0.z * cfg.dims.z)};
  TrackResult track = tracker.track(seed, 0);
  FeatureHistory history = build_feature_history(track);

  Table table({"paper_t", "tracked_voxels", "components", "centroid",
               "truth_overlap"});
  CsvWriter csv(bench::output_dir() + "/fig9_vortex_track.csv",
                {"paper_t", "voxels", "components", "overlap"});

  bool tracked_every_step = true;
  bool centroid_moves = false;
  Vec3 first_centroid;
  for (int s = 0; s < cfg.num_steps; ++s) {
    std::size_t voxels = track.voxels_at(s);
    if (voxels == 0) tracked_every_step = false;
    int comps = history.component_count(s);
    Vec3 centroid;
    if (comps > 0) {
      auto nodes = history.nodes_at(s);
      for (int n : nodes) {
        centroid += history.nodes[static_cast<std::size_t>(n)].info.centroid;
      }
      centroid = centroid / comps;
      if (s == 0) first_centroid = centroid;
      if ((centroid - first_centroid).norm() > 3.0) centroid_moves = true;
    }
    double overlap = 0.0;
    if (track.reached(s)) {
      overlap =
          score_mask(track.masks.at(s), source->feature_mask(s)).jaccard();
    }
    std::ostringstream cstr;
    cstr << '(' << static_cast<int>(centroid.x) << ','
         << static_cast<int>(centroid.y) << ','
         << static_cast<int>(centroid.z) << ')';
    table.add_row({std::to_string(50 + s), std::to_string(voxels),
                   std::to_string(comps), cstr.str(), Table::num(overlap)});
    csv.row(50 + s, voxels, comps, overlap);
  }
  table.print(std::cout);

  auto splits = history.events_of(EventType::kSplit);
  std::cout << "\ndetected events:";
  for (const auto& e : history.events) {
    if (e.type != EventType::kContinuation) {
      std::cout << "  " << event_name(e.type) << "@t=" << (50 + e.step);
    }
  }
  std::cout << "\n\n";

  bench::ShapeCheck check;
  check.expect(tracked_every_step, "the vortex is tracked at every step");
  check.expect(centroid_moves, "the tracked vortex moves through the volume");
  check.expect(history.component_count(cfg.split_step) == 2,
               "two components after the split");
  check.expect(history.component_count(cfg.split_step - 1) == 1,
               "one component before the split");
  check.expect(splits.size() == 1 && splits[0].step == cfg.split_step - 1,
               "exactly one split event, at the expected step");
  return check.exit_code();
}
