# Empty compiler generated dependencies file for ifet_tf.
# This may be replaced when dependencies are built.
