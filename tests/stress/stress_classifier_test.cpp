// Concurrent histogram construction and classifier (MLP) evaluation
// stress tests for the tsan preset.
//
// The paper's idle-loop trains while the UI classifies, so concurrent
// read-only evaluation of one shared network against a shared volume is
// the steady state of the whole system; these tests make that access
// pattern TSan-visible at small scale.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "volume/histogram.hpp"
#include "volume/volume.hpp"

namespace ifet {
namespace {

VolumeF deterministic_volume() {
  VolumeF v(Dims{24, 24, 12});
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>((i * 2654435761u % 1000u)) / 1000.0f;
  }
  return v;
}

TEST(ClassifierStress, ConcurrentHistogramsOverSharedVolume) {
  const VolumeF volume = deterministic_volume();
  const Histogram reference = Histogram::of(volume, 64, 0.0, 1.0);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const Histogram h = Histogram::of(volume, 64, 0.0, 1.0);
      if (h.total() != reference.total()) mismatches.fetch_add(1);
      for (int b = 0; b < h.bins(); ++b) {
        if (h.count(b) != reference.count(b)) mismatches.fetch_add(1);
      }
      const CumulativeHistogram c(h);
      if (std::abs(c.fraction_at(1.0) - 1.0) > 1e-12) mismatches.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ClassifierStress, SharedMlpEvaluatedFromManyThreads) {
  Rng rng(1234);
  Mlp net({3, 8, 1}, rng);
  // A little training first so the weights are not the fresh init.
  BackpropConfig config;
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (double x = 0.0; x <= 1.0; x += 0.25) {
      const double in[3] = {x, 1.0 - x, 0.5};
      const double target[1] = {x > 0.5 ? 1.0 : 0.0};
      net.train_sample(in, target, config);
    }
  }
  const Mlp& shared = net;

  constexpr int kThreads = 6;
  constexpr int kEvals = 500;
  std::vector<std::vector<double>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& out = per_thread[static_cast<std::size_t>(t)];
      out.reserve(kEvals);
      for (int e = 0; e < kEvals; ++e) {
        const double x = static_cast<double>(e) / kEvals;
        const double in[3] = {x, 1.0 - x, 0.5};
        out.push_back(shared.forward_scalar(in));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Read-only concurrent evaluation must be deterministic across threads.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[static_cast<std::size_t>(t)], per_thread[0]);
  }
}

TEST(ClassifierStress, ParallelPerVoxelClassificationWritesDisjoint) {
  const VolumeF volume = deterministic_volume();
  Rng rng(99);
  const Mlp net({1, 4, 1}, rng);
  VolumeF opacity(volume.dims(), 0.0f);
  ThreadPool pool(4);
  pool.parallel_for_dynamic(0, volume.size(), 128,
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) {
                                const double in[1] = {volume[i]};
                                opacity[i] = static_cast<float>(
                                    net.forward_scalar(in));
                              }
                            });
  // Spot-check against a serial evaluation.
  for (std::size_t i = 0; i < volume.size(); i += 997) {
    const double in[1] = {volume[i]};
    EXPECT_FLOAT_EQ(opacity[i], static_cast<float>(net.forward_scalar(in)));
  }
}

}  // namespace
}  // namespace ifet
