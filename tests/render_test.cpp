#include <gtest/gtest.h>

#include <cmath>

#include "render/camera.hpp"
#include "render/raycaster.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

using testing::blob_volume;
using testing::box_mask;

TEST(Camera, PixelRaysAreUnitLength) {
  Camera cam(0.5, 0.3, 2.5);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      Ray r = cam.pixel_ray(x, y, 8, 8);
      EXPECT_NEAR(r.direction.norm(), 1.0, 1e-12);
      EXPECT_NEAR((r.origin - cam.position()).norm(), 0.0, 1e-12);
    }
  }
}

TEST(Camera, CenterRayPointsAtOrigin) {
  Camera cam(0.7, 0.2, 3.0);
  // With an even image the four center pixels straddle the axis; a large
  // image makes the center ray nearly exact.
  Ray r = cam.pixel_ray(500, 500, 1001, 1001);
  // The ray from the eye towards the origin:
  Vec3 to_origin = (Vec3{0, 0, 0} - cam.position()).normalized();
  EXPECT_NEAR(r.direction.dot(to_origin), 1.0, 1e-4);
}

TEST(Camera, RejectsBadParameters) {
  EXPECT_THROW(Camera(0, 0, -1.0), Error);
  EXPECT_THROW(Camera(0, 0, 1.0, 5.0), Error);
}

TEST(Camera, StraightDownViewUsesFallbackUp) {
  // Elevation ~ +-pi/2 makes the view direction parallel to world up; the
  // camera must fall back to an alternative up vector and still produce
  // finite, unit-length rays.
  for (double elevation : {1.5707, -1.5707}) {
    Camera cam(0.3, elevation, 2.0);
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        Ray r = cam.pixel_ray(x, y, 4, 4);
        EXPECT_NEAR(r.direction.norm(), 1.0, 1e-9);
        EXPECT_TRUE(std::isfinite(r.direction.x));
        EXPECT_TRUE(std::isfinite(r.direction.y));
        EXPECT_TRUE(std::isfinite(r.direction.z));
      }
    }
  }
}

TEST(IntersectBox, HitAndMiss) {
  Vec3 lo{-0.5, -0.5, -0.5}, hi{0.5, 0.5, 0.5};
  double t0, t1;
  Ray hit{{-2, 0, 0}, {1, 0, 0}};
  ASSERT_TRUE(intersect_box(hit, lo, hi, t0, t1));
  EXPECT_NEAR(t0, 1.5, 1e-12);
  EXPECT_NEAR(t1, 2.5, 1e-12);

  Ray miss{{-2, 2, 0}, {1, 0, 0}};
  EXPECT_FALSE(intersect_box(miss, lo, hi, t0, t1));

  // Ray starting inside: t_near clamps to 0.
  Ray inside{{0, 0, 0}, {0, 0, 1}};
  ASSERT_TRUE(intersect_box(inside, lo, hi, t0, t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_NEAR(t1, 0.5, 1e-12);
}

TEST(IntersectBox, AxisParallelRay) {
  Vec3 lo{0, 0, 0}, hi{1, 1, 1};
  double t0, t1;
  // Parallel to x inside the slab.
  Ray in{{-1, 0.5, 0.5}, {1, 0, 0}};
  EXPECT_TRUE(intersect_box(in, lo, hi, t0, t1));
  // Parallel to x outside the slab.
  Ray out{{-1, 2.0, 0.5}, {1, 0, 0}};
  EXPECT_FALSE(intersect_box(out, lo, hi, t0, t1));
}

RenderSettings small_settings() {
  RenderSettings s;
  s.width = 48;
  s.height = 48;
  return s;
}

TEST(Raycaster, TransparentTfGivesBackground) {
  VolumeF v = testing::random_volume(Dims{16, 16, 16}, 3);
  TransferFunction1D tf(0.0, 1.0);  // fully transparent
  RenderSettings s = small_settings();
  s.background = Rgb{0.25, 0.5, 0.75};
  Raycaster caster(s);
  Camera cam(0.4, 0.3, 2.5);
  ImageRgb8 img = caster.render(v, tf, ColorMap(), cam);
  for (std::size_t p = 0; p < img.pixels.size(); p += 3) {
    EXPECT_EQ(img.pixels[p], 64);       // 0.25
    EXPECT_EQ(img.pixels[p + 1], 128);  // 0.5
    EXPECT_EQ(img.pixels[p + 2], 191);  // 0.75
  }
}

TEST(Raycaster, OpaqueBlobProducesNonBackgroundPixels) {
  VolumeF v = blob_volume(Dims{24, 24, 24}, {12, 12, 12}, 4.0, 1.0f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.5, 1.0, 1.0);
  Raycaster caster(small_settings());
  Camera cam(0.4, 0.3, 2.5);
  RenderStats stats;
  ImageRgb8 img = caster.render(v, tf, ColorMap(), cam, nullptr, &stats);
  int nonblack = 0;
  for (std::size_t p = 0; p < img.pixels.size(); p += 3) {
    if (img.pixels[p] || img.pixels[p + 1] || img.pixels[p + 2]) ++nonblack;
  }
  EXPECT_GT(nonblack, 30);
  EXPECT_EQ(stats.rays, 48u * 48u);
  EXPECT_GT(stats.samples, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Raycaster, EarlyTerminationTriggersOnOpaqueVolume) {
  VolumeF v(Dims{16, 16, 16}, 0.8f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.0, 1.0, 1.0);  // everything fully opaque
  Raycaster caster(small_settings());
  Camera cam(0.4, 0.3, 2.5);
  RenderStats stats;
  caster.render(v, tf, ColorMap(), cam, nullptr, &stats);
  EXPECT_GT(stats.terminated_early, 100u);
}

TEST(Raycaster, HighlightTurnsMaskRegionRed) {
  // Volume: uniform medium-opacity; highlight mask over one half.
  VolumeF v(Dims{16, 16, 16}, 0.5f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.0, 1.0, 0.9);
  TransferFunction1D highlight_tf = tf;
  Mask mask = box_mask(Dims{16, 16, 16}, {0, 0, 0}, {15, 15, 15});
  HighlightLayer layer{&mask, &highlight_tf, Rgb{1.0, 0.0, 0.0}};
  RenderSettings s = small_settings();
  s.shading = false;  // keep colors pure
  Raycaster caster(s);
  Camera cam(0.4, 0.3, 2.5);
  ImageRgb8 img = caster.render(v, tf, ColorMap(), cam, &layer);
  // Every volume-covering pixel must be pure red (mask covers everything).
  int red_pixels = 0;
  for (std::size_t p = 0; p < img.pixels.size(); p += 3) {
    if (img.pixels[p] > 200 && img.pixels[p + 1] < 30 &&
        img.pixels[p + 2] < 30) {
      ++red_pixels;
    }
  }
  EXPECT_GT(red_pixels, 400);
}

TEST(Raycaster, ClassifiedRenderWithUnitCertaintyMatchesRender) {
  VolumeF v = blob_volume(Dims{16, 16, 16}, {8, 8, 8}, 3.0, 1.0f);
  VolumeF certainty(v.dims(), 1.0f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.4, 1.0, 0.8);
  Raycaster caster(small_settings());
  Camera cam(0.4, 0.3, 2.5);
  ImageRgb8 plain = caster.render(v, tf, ColorMap(), cam);
  ImageRgb8 classified =
      caster.render_classified(v, certainty, tf, ColorMap(), cam);
  // certainty == 1 everywhere multiplies every opacity by exactly 1.0, so
  // the pre-classified pass must reproduce render() pixel for pixel.
  EXPECT_EQ(plain.pixels, classified.pixels);
}

TEST(Raycaster, ZeroCertaintyHidesTheVolume) {
  VolumeF v = blob_volume(Dims{16, 16, 16}, {8, 8, 8}, 3.0, 1.0f);
  VolumeF certainty(v.dims(), 0.0f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.0, 1.0, 1.0);
  RenderSettings s = small_settings();
  s.background = Rgb{0.25, 0.5, 0.75};
  Raycaster caster(s);
  Camera cam(0.4, 0.3, 2.5);
  ImageRgb8 img = caster.render_classified(v, certainty, tf, ColorMap(), cam);
  for (std::size_t p = 0; p < img.pixels.size(); p += 3) {
    EXPECT_EQ(img.pixels[p], 64);
    EXPECT_EQ(img.pixels[p + 1], 128);
    EXPECT_EQ(img.pixels[p + 2], 191);
  }
}

TEST(Raycaster, ClassifiedRenderValidatesInputs) {
  VolumeF v(Dims{8, 8, 8}, 0.5f);
  TransferFunction1D tf(0.0, 1.0);
  Camera cam(0.4, 0.3, 2.5);
  VolumeF wrong_dims(Dims{4, 4, 4}, 1.0f);
  Raycaster caster(small_settings());
  EXPECT_THROW(caster.render_classified(v, wrong_dims, tf, ColorMap(), cam),
               Error);
  RenderSettings mip = small_settings();
  mip.mode = CompositingMode::kMaximumIntensity;
  VolumeF certainty(v.dims(), 1.0f);
  Raycaster mip_caster(mip);
  EXPECT_THROW(
      mip_caster.render_classified(v, certainty, tf, ColorMap(), cam), Error);
}

TEST(Raycaster, HighlightValidatesInputs) {
  VolumeF v(Dims{8, 8, 8}, 0.5f);
  TransferFunction1D tf(0.0, 1.0);
  Raycaster caster(small_settings());
  Camera cam(0.4, 0.3, 2.5);
  HighlightLayer missing{nullptr, nullptr, Rgb{1, 0, 0}};
  EXPECT_THROW(caster.render(v, tf, ColorMap(), cam, &missing), Error);
  Mask wrong(Dims{4, 4, 4});
  HighlightLayer bad{&wrong, &tf, Rgb{1, 0, 0}};
  EXPECT_THROW(caster.render(v, tf, ColorMap(), cam, &bad), Error);
}

TEST(Raycaster, SettingsValidated) {
  RenderSettings s;
  s.width = 0;
  EXPECT_THROW(Raycaster{s}, Error);
  RenderSettings s2;
  s2.step_voxels = 0.0;
  EXPECT_THROW(Raycaster{s2}, Error);
}

TEST(Raycaster, SmallerStepSamplesMore) {
  VolumeF v(Dims{16, 16, 16}, 0.1f);
  TransferFunction1D tf(0.0, 1.0);  // transparent: no early termination
  Camera cam(0.4, 0.3, 2.5);
  // A fully transparent TF marks every brick skippable, which would clip
  // all samples; this test is about raw march density, so skip nothing.
  RenderSettings coarse = small_settings();
  coarse.step_voxels = 2.0;
  coarse.empty_space_skipping = false;
  RenderSettings fine = small_settings();
  fine.step_voxels = 0.5;
  fine.empty_space_skipping = false;
  RenderStats cs, fs;
  Raycaster(coarse).render(v, tf, ColorMap(), cam, nullptr, &cs);
  Raycaster(fine).render(v, tf, ColorMap(), cam, nullptr, &fs);
  EXPECT_GT(fs.samples, cs.samples * 3);
}

TEST(RenderSlice, MapsValuesThroughTf) {
  Dims d{8, 8, 8};
  VolumeF v(d, 0.0f);
  v.at(3, 4, 2) = 1.0f;
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.9, 1.0, 1.0);
  ColorMap colors({{0.0, Rgb{0, 0, 1}}, {1.0, Rgb{1, 0, 0}}});
  ImageRgb8 img = render_slice(v, 2, 2, tf, colors);
  EXPECT_EQ(img.width, 8);
  EXPECT_EQ(img.height, 8);
  // The hot voxel renders red at (col=3,row=4); everything else black
  // (opacity zero).
  std::size_t o = 3 * (4u * 8u + 3u);
  EXPECT_GT(img.pixels[o], 200);
  EXPECT_EQ(img.pixels[o + 2], 0);
  std::size_t elsewhere = 3 * (0u * 8u + 0u);
  EXPECT_EQ(img.pixels[elsewhere], 0);
}

TEST(RenderSlice, AxisSelection) {
  Dims d{4, 6, 8};
  VolumeF v(d, 0.5f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.0, 1.0, 1.0);
  ImageRgb8 x = render_slice(v, 0, 1, tf, ColorMap());
  EXPECT_EQ(x.width, 6);
  EXPECT_EQ(x.height, 8);
  ImageRgb8 y = render_slice(v, 1, 1, tf, ColorMap());
  EXPECT_EQ(y.width, 4);
  EXPECT_EQ(y.height, 8);
  ImageRgb8 z = render_slice(v, 2, 1, tf, ColorMap());
  EXPECT_EQ(z.width, 4);
  EXPECT_EQ(z.height, 6);
  EXPECT_THROW(render_slice(v, 3, 0, tf, ColorMap()), Error);
  EXPECT_THROW(render_slice(v, 2, 99, tf, ColorMap()), Error);
}

}  // namespace
}  // namespace ifet
