file(REMOVE_RECURSE
  "CMakeFiles/keyframe_advisor_test.dir/keyframe_advisor_test.cpp.o"
  "CMakeFiles/keyframe_advisor_test.dir/keyframe_advisor_test.cpp.o.d"
  "keyframe_advisor_test"
  "keyframe_advisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyframe_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
