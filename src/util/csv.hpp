// Minimal CSV writer used by the benchmark harnesses to persist the series
// behind each reproduced figure (so plots can be regenerated outside C++).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace ifet {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; values are stringified with operator<<.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::ostringstream os;
    bool first = true;
    ((os << (first ? "" : ",") << values, first = false), ...);
    write_line(os.str());
  }

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  void write_line(const std::string& line);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace ifet
