# Empty compiler generated dependencies file for bench_ml_engines.
# This may be replaced when dependencies are built.
