// Time-varying volume sequences (the "4D" in the paper's title).
//
// Terascale sequences do not fit in core (paper Sec 4.2.2: "when the volume
// size is large or many time steps are used, it can be time consuming to
// load the volumes for training since not all the data can fit in core").
// VolumeSequence is therefore an *interface*: consumers (IATF synthesis,
// dataspace classification, 4D region growing, rendering) ask for steps and
// per-step cumulative histograms without knowing whether the data is fully
// resident, LRU-cached, or streamed from disk under a byte budget.
//
// Implementations:
//  * CachedSequence (this file)     — count-capped LRU over a VolumeSource;
//    with capacity >= num_steps it is the trivial fully-resident path.
//  * StreamedSequence (src/stream/) — out-of-core: byte-budgeted cache,
//    async prefetch, windowed pinning, derived-product memoization.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "util/thread_annotations.hpp"
#include "volume/brick_index.hpp"
#include "volume/histogram.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Abstract producer of the volume for a given time step.
class VolumeSource {
 public:
  virtual ~VolumeSource() = default;

  virtual Dims dims() const = 0;
  virtual int num_steps() const = 0;
  /// Global scalar range across all steps (used to fix histogram binning so
  /// cumulative coordinates are comparable between time steps).
  virtual std::pair<double, double> value_range() const = 0;
  virtual VolumeF generate(int step) const = 0;

  /// Ingest-time brick min/max metadata for `step`, when the backing
  /// container carries it (a v2 .cvol brick section — see io/compressed).
  /// The default (procedural sources, legacy files, raw .vol sets) returns
  /// nullptr and consumers build the index from the decoded volume
  /// instead. Implementations must serve this WITHOUT decoding the step's
  /// payload — it is the renderer's cheap pre-pass over steps that may
  /// never become resident.
  virtual std::shared_ptr<const BrickIndex> brick_metadata(int step) const {
    (void)step;
    return nullptr;
  }
};

/// Adapts a lambda to a VolumeSource.
class CallbackSource final : public VolumeSource {
 public:
  CallbackSource(Dims dims, int num_steps, std::pair<double, double> range,
                 std::function<VolumeF(int)> generate)
      : dims_(dims),
        num_steps_(num_steps),
        range_(range),
        generate_(std::move(generate)) {}

  Dims dims() const override { return dims_; }
  int num_steps() const override { return num_steps_; }
  std::pair<double, double> value_range() const override { return range_; }
  VolumeF generate(int step) const override { return generate_(step); }

 private:
  Dims dims_;
  int num_steps_;
  std::pair<double, double> range_;
  std::function<VolumeF(int)> generate_;
};

/// Interface every 4D pipeline consumes: per-step volumes plus per-step
/// cumulative histograms over the sequence-global value range.
///
/// Reference validity: the VolumeF& returned by step() stays valid until a
/// later access lets the implementation recycle the entry — for
/// CachedSequence that is LRU eviction past the capacity, for
/// StreamedSequence it is the pinned window sliding away. Callers that
/// interleave accesses to several steps (e.g. 4D region growing) declare
/// the steps they hold with hint_window().
class VolumeSequence {
 public:
  virtual ~VolumeSequence() = default;

  virtual Dims dims() const = 0;
  virtual int num_steps() const = 0;
  virtual std::pair<double, double> value_range() const = 0;
  virtual int histogram_bins() const = 0;

  /// Volume at `step` (loaded/generated on miss; cached).
  virtual const VolumeF& step(int step) const = 0;

  /// Volume at `step`, or nullptr when the step is unavailable and the
  /// implementation's fail policy allows skipping it (out-of-core
  /// streaming with FailPolicy::kSkipStep — see docs/ROBUSTNESS.md).
  /// Fully-resident implementations never return nullptr. Consumers that
  /// can bridge gaps (feature tracking) use this; step() throws instead.
  virtual const VolumeF* try_step(int t) const { return &step(t); }

  /// Cumulative histogram of `step` over the sequence-global value range.
  virtual const CumulativeHistogram& cumulative_histogram(int step) const = 0;

  /// Histogram of `step` over the sequence-global value range.
  virtual Histogram histogram(int step) const = 0;

  /// Number of source loads so far (cache-miss count; for tests).
  virtual std::size_t generation_count() const = 0;

  /// Brick min/max metadata for `step` (renderer empty-space skipping).
  /// Implementations prefer ingest-time metadata from the backing
  /// container (served without decoding the payload) and fall back to
  /// building the index from the decoded volume, memoizing either way.
  /// The base default returns nullptr: callers must handle "no metadata"
  /// by building from the volume themselves (Raycaster::prepare_plan
  /// does).
  virtual std::shared_ptr<const BrickIndex> brick_index(int step) const {
    (void)step;
    return nullptr;
  }

  // --- Streaming hooks (no-ops on fully-resident implementations) ---

  /// Declare that the caller will interleave accesses to steps in
  /// [lo, hi] (clamped to the sequence): out-of-core implementations pin
  /// that window so references stay valid while the rest evicts.
  virtual void hint_window(int lo, int hi) const {
    (void)lo;
    (void)hi;
  }

  /// Advise that `step` will likely be needed soon; out-of-core
  /// implementations overlap its decode with the caller's compute.
  virtual void prefetch_hint(int step) const { (void)step; }
};

/// Count-capped LRU implementation of VolumeSequence, plus the trivial
/// fully-resident path (capacity >= num_steps).
///
/// Thread safety: cache bookkeeping is internally synchronized, so
/// concurrent step()/cumulative_histogram() calls are safe — but the
/// returned references stay valid only until the entry is evicted. When
/// reading from several threads (e.g. run_batch_render with a shared
/// sequence), size `cache_capacity` to at least the number of concurrent
/// readers, or have each worker generate() its own volume.
class CachedSequence final : public VolumeSequence {
 public:
  /// Keeps at most `cache_capacity` decoded steps in memory.
  CachedSequence(std::shared_ptr<const VolumeSource> source,
                 std::size_t cache_capacity = 4, int histogram_bins = 256);

  Dims dims() const override { return source_->dims(); }
  int num_steps() const override { return source_->num_steps(); }
  std::pair<double, double> value_range() const override {
    return source_->value_range();
  }
  int histogram_bins() const override { return histogram_bins_; }

  const VolumeF& step(int step) const override;
  const CumulativeHistogram& cumulative_histogram(int step) const override;
  Histogram histogram(int step) const override;
  /// Ingest metadata when the source carries it, else built from the
  /// decoded step; memoized for the sequence lifetime (brick indices are
  /// ~0.2% of a volume, so they are not subject to LRU eviction).
  std::shared_ptr<const BrickIndex> brick_index(int step) const override
      IFET_EXCLUDES(mutex_);
  // Locked: generations_ is written by concurrent fetches; the old
  // lock-free read here was a data race the thread-safety annotations
  // refused to compile.
  std::size_t generation_count() const override IFET_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return generations_;
  }

 private:
  struct Entry {
    VolumeF volume;
    std::unique_ptr<CumulativeHistogram> cumhist;
  };

  Entry& fetch(int step) const IFET_EXCLUDES(mutex_);

  std::shared_ptr<const VolumeSource> source_;
  std::size_t capacity_;
  int histogram_bins_;
  // Plain annotated Mutex (not rank-checked): fetch() deliberately runs
  // source_->generate() under the lock — the documented serialize-
  // generation contract of this legacy in-memory path — so it must stay
  // out of the leaf-rank discipline the streaming classes follow.
  mutable Mutex mutex_;
  mutable std::list<int> lru_ IFET_GUARDED_BY(mutex_);  // front = recent
  mutable std::unordered_map<int, Entry> cache_ IFET_GUARDED_BY(mutex_);
  mutable std::unordered_map<int, std::shared_ptr<const BrickIndex>> bricks_
      IFET_GUARDED_BY(mutex_);
  mutable std::size_t generations_ IFET_GUARDED_BY(mutex_) = 0;
};

}  // namespace ifet
