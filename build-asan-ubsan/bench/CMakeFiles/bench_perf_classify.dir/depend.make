# Empty dependencies file for bench_perf_classify.
# This may be replaced when dependencies are built.
