file(REMOVE_RECURSE
  "CMakeFiles/volume_test.dir/volume_test.cpp.o"
  "CMakeFiles/volume_test.dir/volume_test.cpp.o.d"
  "volume_test"
  "volume_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
