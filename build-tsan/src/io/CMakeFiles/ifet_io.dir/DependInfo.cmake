
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/compressed.cpp" "src/io/CMakeFiles/ifet_io.dir/compressed.cpp.o" "gcc" "src/io/CMakeFiles/ifet_io.dir/compressed.cpp.o.d"
  "/root/repo/src/io/image_io.cpp" "src/io/CMakeFiles/ifet_io.dir/image_io.cpp.o" "gcc" "src/io/CMakeFiles/ifet_io.dir/image_io.cpp.o.d"
  "/root/repo/src/io/volume_io.cpp" "src/io/CMakeFiles/ifet_io.dir/volume_io.cpp.o" "gcc" "src/io/CMakeFiles/ifet_io.dir/volume_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
