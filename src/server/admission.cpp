#include "server/admission.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace ifet {

AdmissionController::AdmissionController(std::size_t step_bytes,
                                         std::size_t pin_quota_bytes,
                                         int num_steps)
    : step_bytes_(step_bytes),
      pin_quota_bytes_(pin_quota_bytes),
      num_steps_(num_steps) {
  IFET_REQUIRE(step_bytes_ > 0, "AdmissionController: step_bytes must be > 0");
  IFET_REQUIRE(num_steps_ > 0, "AdmissionController: need at least one step");
}

std::size_t AdmissionController::quota_steps_base() const {
  if (pin_quota_bytes_ == 0) return static_cast<std::size_t>(num_steps_);
  return std::min(static_cast<std::size_t>(num_steps_),
                  pin_quota_bytes_ / step_bytes_);
}

std::size_t AdmissionController::quota_steps() const {
  const std::size_t base = quota_steps_base();
  const int percent = quota_scale_percent_.load(std::memory_order_relaxed);
  if (percent >= 100) return base;
  // Floor at one step: even under the harshest pressure a client keeps its
  // current step pinned (evicting the step being tracked would turn every
  // growth iteration into a reload storm — worse than the pressure).
  return std::max<std::size_t>(
      1, base * static_cast<std::size_t>(percent) / 100);
}

int AdmissionController::register_client() {
  OrderedMutexLock lock(mutex_);
  // Reuse a retired slot so long-running servers with session churn keep
  // the ledger vector (and note_access's index range) bounded.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i].active) {
      clients_[i] = Ledger{};
      clients_[i].active = true;
      clients_[i].seen.assign(static_cast<std::size_t>(num_steps_), 0);
      return static_cast<int>(i);
    }
  }
  Ledger ledger;
  ledger.active = true;
  ledger.seen.assign(static_cast<std::size_t>(num_steps_), 0);
  clients_.push_back(std::move(ledger));
  return static_cast<int>(clients_.size() - 1);
}

std::vector<int> AdmissionController::release_client(int client) {
  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::release_client: unknown client");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  std::vector<int> unpin = std::move(c.admitted);
  c = Ledger{};  // active = false; slot reusable
  return unpin;
}

namespace {

/// The canonical admission order: steps of [lo, hi] nearest `center`
/// first (ties: the earlier step), truncated at `quota`. Returns
/// {admitted, denied}, each sorted ascending. Both set_window and the
/// pressure rescale go through here so a clamp-then-restore cycle lands
/// on exactly the set a fresh hint would produce.
std::pair<std::vector<int>, std::vector<int>> admit_center_out(
    int lo, int hi, int center, std::size_t quota) {
  std::vector<int> desired;
  for (int s = lo; s <= hi; ++s) desired.push_back(s);
  std::stable_sort(desired.begin(), desired.end(), [center](int a, int b) {
    const int da = std::abs(a - center);
    const int db = std::abs(b - center);
    return da != db ? da < db : a < b;
  });
  const std::size_t admit = std::min(desired.size(), quota);
  std::vector<int> denied(desired.begin() + static_cast<std::ptrdiff_t>(admit),
                          desired.end());
  desired.resize(admit);
  std::sort(desired.begin(), desired.end());
  std::sort(denied.begin(), denied.end());
  return {std::move(desired), std::move(denied)};
}

}  // namespace

WindowDelta AdmissionController::set_window(int client, int lo, int hi,
                                            int center) {
  lo = std::max(lo, 0);
  hi = std::min(hi, num_steps_ - 1);
  center = std::clamp(center, lo, hi);

  // Nearest-center first: the current step must be the last pin the quota
  // ever refuses (deterministic order, deterministic admitted set).
  auto [admitted, denied] = admit_center_out(lo, hi, center, quota_steps());
  WindowDelta delta;
  delta.denied = std::move(denied);

  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::set_window: unknown client");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  std::set_difference(admitted.begin(), admitted.end(), c.admitted.begin(),
                      c.admitted.end(), std::back_inserter(delta.pin));
  std::set_difference(c.admitted.begin(), c.admitted.end(), admitted.begin(),
                      admitted.end(), std::back_inserter(delta.unpin));
  c.admitted = std::move(admitted);
  c.has_window = true;
  c.window_lo = lo;
  c.window_hi = hi;
  c.window_center = center;
  c.stats.denied_pins += delta.denied.size();
  c.stats.pinned_steps = c.admitted.size();
  c.stats.pinned_bytes = c.admitted.size() * step_bytes_;
  return delta;
}

std::vector<std::pair<int, WindowDelta>> AdmissionController::set_quota_scale(
    int percent) {
  percent = std::clamp(percent, 1, 100);
  // Publish the scale first so concurrent set_window calls already admit
  // under the new quota, then reclamp the remembered windows.
  const int previous =
      quota_scale_percent_.exchange(percent, std::memory_order_relaxed);
  std::vector<std::pair<int, WindowDelta>> out;
  if (previous == percent) return out;
  const std::size_t quota = quota_steps();

  OrderedMutexLock lock(mutex_);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Ledger& c = clients_[i];
    if (!c.active || !c.has_window) continue;
    auto [admitted, denied] = admit_center_out(c.window_lo, c.window_hi,
                                               c.window_center, quota);
    (void)denied;  // Reclamps are not hint-time refusals; see below.
    WindowDelta delta;
    std::set_difference(admitted.begin(), admitted.end(), c.admitted.begin(),
                        c.admitted.end(), std::back_inserter(delta.pin));
    std::set_difference(c.admitted.begin(), c.admitted.end(), admitted.begin(),
                        admitted.end(), std::back_inserter(delta.unpin));
    if (delta.pin.empty() && delta.unpin.empty()) continue;
    c.admitted = std::move(admitted);
    // Fairness accounting: a clamp's revocations are pressure_unpins, NOT
    // denied_pins — the client asked for nothing new; the server took
    // pins back. (Restores produce only pins and count nothing.)
    c.stats.pressure_unpins += delta.unpin.size();
    c.stats.pinned_steps = c.admitted.size();
    c.stats.pinned_bytes = c.admitted.size() * step_bytes_;
    out.emplace_back(static_cast<int>(i), std::move(delta));
  }
  return out;
}

IFET_HOT std::size_t AdmissionController::demanded_pin_steps() const {
  const std::size_t base = quota_steps_base();
  OrderedMutexLock lock(mutex_);
  std::size_t demand = 0;
  for (const Ledger& c : clients_) {
    if (!c.active || !c.has_window) continue;
    const std::size_t window =
        static_cast<std::size_t>(c.window_hi - c.window_lo + 1);
    demand += std::min(window, base);
  }
  return demand;
}

IFET_HOT void AdmissionController::note_access(int client, int step,
                                               bool resident) {
  OrderedMutexLock lock(mutex_);
  IFET_DEBUG_ASSERT(client >= 0 &&
                        client < static_cast<int>(clients_.size()) &&
                        clients_[static_cast<std::size_t>(client)].active,
                    "AdmissionController::note_access: unknown client");
  IFET_DEBUG_ASSERT(step >= 0 && step < num_steps_,
                    "AdmissionController::note_access: step out of range");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  ++c.stats.accesses;
  std::uint8_t& seen = c.seen[static_cast<std::size_t>(step)];
  if (!resident && seen != 0) ++c.stats.reloads;
  seen = 1;
}

AdmissionStats AdmissionController::client_stats(int client) const {
  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::client_stats: unknown client");
  return clients_[static_cast<std::size_t>(client)].stats;
}

}  // namespace ifet
