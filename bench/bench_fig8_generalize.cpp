// Figure 8 reproduction: temporal generalization of data-space extraction.
//
// Paper: the network is trained on time steps 130 and 310 and then applied
// to other steps; at t=250 (never seen in training) "the small features
// are invisible and large features are retained over time". We train on
// {130, 310} and score the three displayed steps {130, 250, 310}.
#include <iostream>

#include "bench_util.hpp"
#include "core/dataspace.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ifet;

std::vector<PaintedVoxel> sample_mask(const Mask& mask, int step,
                                      double certainty, std::size_t count,
                                      Rng& rng) {
  std::vector<Index3> candidates;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) candidates.push_back(mask.coord_of(i));
  }
  std::vector<PaintedVoxel> out;
  for (std::size_t s = 0; s < count && !candidates.empty(); ++s) {
    out.push_back(
        {candidates[rng.uniform_index(candidates.size())], step, certainty});
  }
  return out;
}

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== Fig 8: train on t={130,310}, apply to t=250 "
               "(reionization) ===\n";

  ReionizationConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 400;
  auto source = std::make_shared<ReionizationSource>(cfg);

  DataSpaceConfig dcfg;
  dcfg.spec.shell_radius = 3.0;  // time stays ON: trained across two steps
  DataSpaceClassifier clf(cfg.num_steps, 0.0, 1.0, dcfg);

  Rng rng(99);
  for (int train_step : {130, 310}) {
    VolumeF volume = source->generate(train_step);
    Mask large = source->large_mask(train_step);
    Mask small = source->small_mask(train_step);
    Mask background(volume.dims());
    for (std::size_t i = 0; i < background.size(); ++i) {
      background[i] = (!large[i] && !small[i]) ? 1 : 0;
    }
    std::vector<PaintedVoxel> painted;
    auto append = [&](std::vector<PaintedVoxel> v) {
      painted.insert(painted.end(), v.begin(), v.end());
    };
    append(sample_mask(large, train_step, 1.0, 400, rng));
    append(sample_mask(small, train_step, 0.0, 280, rng));
    append(sample_mask(background, train_step, 0.0, 280, rng));
    clf.add_samples(volume, train_step, painted);
  }
  clf.train(400);

  Table table({"t", "trained_on", "small_leakage", "large_recall"});
  CsvWriter csv(bench::output_dir() + "/fig8_generalize.csv",
                {"t", "trained", "small_leakage", "large_recall"});
  double heldout_leak = 1.0, heldout_recall = 0.0;
  double trained_leak_sum = 0.0, trained_recall_sum = 0.0;
  for (int t : {130, 250, 310}) {
    VolumeF volume = source->generate(t);
    Mask extracted = clf.classify_mask(volume, t, 0.5);
    double leak = coverage(extracted, source->small_mask(t));
    double recall = coverage(extracted, source->large_mask(t));
    bool trained = (t == 130 || t == 310);
    if (trained) {
      trained_leak_sum += leak / 2.0;
      trained_recall_sum += recall / 2.0;
    } else {
      heldout_leak = leak;
      heldout_recall = recall;
    }
    table.add_row({std::to_string(t), trained ? "yes" : "NO",
                   Table::num(leak), Table::num(recall)});
    csv.row(t, trained ? 1 : 0, leak, recall);
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::ShapeCheck check;
  check.expect(heldout_recall > 0.8,
               "large structures retained at the unseen step t=250");
  check.expect(heldout_leak < 0.3,
               "small features suppressed at the unseen step t=250");
  check.expect(heldout_leak < trained_leak_sum + 0.15 &&
                   heldout_recall > trained_recall_sum - 0.15,
               "held-out quality is close to the trained steps");
  return check.exit_code();
}
