// Feature tracking by 4D region growing (paper Sec 5).
//
// Assumption (stated in the paper): temporal sampling is dense enough that
// matching features overlap in 3D between consecutive steps. Tracking is
// then region growing where the fourth dimension is time — a voxel's
// neighbors are its six spatial neighbors in the same step plus the
// same-position voxel in steps t-1 and t+1. The inclusion criterion is
// pluggable: a fixed value range reproduces conventional threshold
// tracking; the adaptive criterion consults the IATF (opacity above a cut)
// so the tracked value band follows the data drift — the Fig 10 contrast.
//
// The grown region is stored as one mask volume per visited step ("the
// region growing result is then saved in a 3D volume texture for
// rendering").
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/iatf.hpp"
#include "stream/derived_cache.hpp"
#include "util/hot_path.hpp"
#include "volume/sequence.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Voxel-inclusion predicate for tracking.
class TrackingCriterion {
 public:
  virtual ~TrackingCriterion() = default;
  /// True if a voxel with `value` at time `step` belongs to the feature.
  virtual bool accept(int step, double value) const = 0;
};

/// Conventional tracking: a constant value range for all steps.
class FixedRangeCriterion final : public TrackingCriterion {
 public:
  FixedRangeCriterion(double lo, double hi) : lo_(lo), hi_(hi) {}
  bool accept(int, double value) const override {
    return value >= lo_ && value <= hi_;
  }

 private:
  double lo_, hi_;
};

/// Adaptive tracking: accept where the IATF's opacity for (value, step)
/// exceeds `opacity_cut`. The per-step 1D transfer functions are
/// synthesized once and cached (sub-second per step, paper Sec 5).
///
/// When a DerivedCache is supplied the synthesized TFs are memoized there,
/// keyed by (step, Iatf::params_hash()) — shared across criteria and runs,
/// and naturally invalidated by further training (the hash changes).
class AdaptiveTfCriterion final : public TrackingCriterion {
 public:
  AdaptiveTfCriterion(const Iatf& iatf, double opacity_cut = 0.25,
                      DerivedCache* derived = nullptr);
  bool accept(int step, double value) const override;

 private:
  const TransferFunction1D& tf_for(int step) const;

  const Iatf& iatf_;
  double opacity_cut_;
  DerivedCache* derived_;
  /// Per-criterion memo; holds shared_ptrs from `derived_` (or privately
  /// synthesized TFs) so the per-voxel hot path is one map lookup.
  mutable std::map<int, std::shared_ptr<const TransferFunction1D>> tf_cache_;
};

/// Per-step output of a tracking run.
struct TrackResult {
  /// step -> mask of tracked voxels (only steps the region reached).
  std::map<int, Mask> masks;

  /// Number of tracked voxels at `step` (0 if the step was never reached).
  std::size_t voxels_at(int step) const;
  bool reached(int step) const { return masks.count(step) != 0; }
  int first_step() const;
  int last_step() const;
};

struct TrackerConfig {
  /// Restrict growing to [min_step, max_step] (inclusive); -1 = sequence
  /// bounds.
  int min_step = -1;
  int max_step = -1;
  /// Safety cap on total grown voxels across all steps (0 = unlimited).
  std::size_t max_voxels = 0;
};

class Tracker {
 public:
  Tracker(const VolumeSequence& sequence, const TrackingCriterion& criterion,
          const TrackerConfig& config = {});

  /// Grow from a single seed; the seed voxel must satisfy the criterion.
  TrackResult track(Index3 seed, int seed_step) const;

  /// Grow from every voxel of `seeds` that satisfies the criterion.
  TrackResult track_from_mask(const Mask& seeds, int seed_step) const;

 private:
  /// Intra-step region-growing worklists, hoisted out of the per-step loop
  /// so steady-state growth reuses their capacity instead of constructing
  /// fresh vectors every step. total_voxels accumulates across steps (the
  /// max_voxels cap is global to the track).
  struct GrowState {
    std::deque<Index3> frontier;      ///< BFS worklist within one step
    std::vector<Index3> newly_added;  ///< voxels accepted at this step
    std::size_t total_voxels = 0;
  };

  /// 3D BFS within `step`: seed from `candidates`, grow through the six
  /// spatial neighbors, record acceptances in `mask` and
  /// `state.newly_added` (cleared by the caller). The region-growing
  /// inner loop — hot once the step's volume is resident.
  void grow_step(int step, const VolumeF& volume,
                 const std::vector<Index3>& candidates, Mask& mask,
                 GrowState& state) const;

  /// Accept `p` into the region if unvisited and the criterion holds.
  void try_add_voxel(int step, const Index3& p, const VolumeF& volume,
                     Mask& mask, GrowState& state) const;

  const VolumeSequence& sequence_;
  const TrackingCriterion& criterion_;
  TrackerConfig config_;
};

}  // namespace ifet
