# Empty compiler generated dependencies file for track_vortex.
# This may be replaced when dependencies are built.
