#include "volume/brick_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tf/transfer_function.hpp"
#include "util/hot_path.hpp"
#include "util/io_error.hpp"

namespace ifet {

namespace {

/// Ceil-division brick-grid extents for a volume extent.
inline int grid_extent(int voxels, int brick_size) {
  return (voxels + brick_size - 1) / brick_size;
}

/// True when the transfer function has at least one nonzero opacity entry
/// in the (clamped, inclusive) entry span covering [lo, hi]. `nonzero` is
/// the prefix-count table: nonzero[i] = number of nonzero entries in
/// [0, i), so the query is O(1) per brick.
inline bool span_visible(const TransferFunction1D& tf,
                         const std::vector<int>& nonzero, float lo,
                         float hi) {
  // entry_of is monotone and clamps, so every value in [lo, hi] lands in
  // [e0, e1]; zero opacity across that span proves the whole interval
  // transparent. -inf/+inf (NaN-contaminated bricks) clamp to the full
  // table, which is exactly the conservative answer.
  const int e0 = tf.entry_of(static_cast<double>(lo));
  const int e1 = tf.entry_of(static_cast<double>(hi));
  return nonzero[static_cast<std::size_t>(e1) + 1] -
             nonzero[static_cast<std::size_t>(e0)] >
         0;
}

std::vector<int> nonzero_prefix(const TransferFunction1D& tf) {
  std::vector<int> prefix(static_cast<std::size_t>(
                              TransferFunction1D::kEntries) +
                          1,
                          0);
  for (int i = 0; i < TransferFunction1D::kEntries; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] +
        (tf.opacity_entry(i) > 0.0 ? 1 : 0);
  }
  return prefix;
}

}  // namespace

BrickIndex BrickIndex::build(const VolumeF& volume, int brick_size) {
  IFET_REQUIRE(!volume.empty(), "BrickIndex::build: empty volume");
  IFET_REQUIRE(brick_size > 0, "BrickIndex::build: brick size must be > 0");
  BrickIndex index;
  index.dims_ = volume.dims();
  index.brick_size_ = brick_size;
  index.grid_ = Dims{grid_extent(index.dims_.x, brick_size),
                     grid_extent(index.dims_.y, brick_size),
                     grid_extent(index.dims_.z, brick_size)};
  index.ranges_.resize(index.grid_.count());

  const Dims d = index.dims_;
  for (int bz = 0; bz < index.grid_.z; ++bz) {
    const int z0 = bz * brick_size;
    const int z1 = std::min(z0 + brick_size, d.z);
    for (int by = 0; by < index.grid_.y; ++by) {
      const int y0 = by * brick_size;
      const int y1 = std::min(y0 + brick_size, d.y);
      for (int bx = 0; bx < index.grid_.x; ++bx) {
        const int x0 = bx * brick_size;
        const int x1 = std::min(x0 + brick_size, d.x);
        float lo = std::numeric_limits<float>::infinity();
        float hi = -std::numeric_limits<float>::infinity();
        bool has_nan = false;
        for (int k = z0; k < z1; ++k) {
          for (int j = y0; j < y1; ++j) {
            std::size_t linear = volume.linear_index(x0, j, k);
            for (int i = x0; i < x1; ++i, ++linear) {
              const float v = volume[linear];
              // NaN fails both comparisons, so it never pollutes lo/hi;
              // the explicit check below widens the brick instead.
              if (v < lo) lo = v;
              if (v > hi) hi = v;
              if (v != v) has_nan = true;
            }
          }
        }
        if (has_nan) {
          lo = -std::numeric_limits<float>::infinity();
          hi = std::numeric_limits<float>::infinity();
        }
        index.ranges_[index.brick_linear(bx, by, bz)] = Range{lo, hi};
      }
    }
  }
  return index;
}

BrickIndex::Range BrickIndex::dilated_range(int bx, int by, int bz) const {
  Range out{std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};
  const int x0 = std::max(bx - 1, 0), x1 = std::min(bx + 1, grid_.x - 1);
  const int y0 = std::max(by - 1, 0), y1 = std::min(by + 1, grid_.y - 1);
  const int z0 = std::max(bz - 1, 0), z1 = std::min(bz + 1, grid_.z - 1);
  for (int nz = z0; nz <= z1; ++nz) {
    for (int ny = y0; ny <= y1; ++ny) {
      for (int nx = x0; nx <= x1; ++nx) {
        const Range& r = ranges_[brick_linear(nx, ny, nz)];
        out.lo = std::min(out.lo, r.lo);
        out.hi = std::max(out.hi, r.hi);
      }
    }
  }
  return out;
}

IFET_DETERMINISTIC void BrickIndex::classify(const TransferFunction1D& tf,
                          std::vector<std::uint8_t>& out) const {
  IFET_REQUIRE(!empty(), "BrickIndex::classify: empty index");
  const std::vector<int> nonzero = nonzero_prefix(tf);
  out.assign(num_bricks(), 0);
  for (int bz = 0; bz < grid_.z; ++bz) {
    for (int by = 0; by < grid_.y; ++by) {
      for (int bx = 0; bx < grid_.x; ++bx) {
        const Range r = dilated_range(bx, by, bz);
        out[brick_linear(bx, by, bz)] =
            span_visible(tf, nonzero, r.lo, r.hi) ? 1 : 0;
      }
    }
  }
}

IFET_DETERMINISTIC void BrickIndex::classify_with_highlight(const TransferFunction1D& tf,
                                         const Mask& mask,
                                         const TransferFunction1D& highlight_tf,
                                         std::vector<std::uint8_t>& out) const {
  IFET_REQUIRE(!empty(), "BrickIndex::classify_with_highlight: empty index");
  IFET_REQUIRE(mask.dims() == dims_,
               "BrickIndex::classify_with_highlight: mask dimension mismatch");
  const std::vector<int> nonzero = nonzero_prefix(tf);
  const std::vector<int> highlight_nonzero = nonzero_prefix(highlight_tf);

  // Brick-grid occupancy of the mask: does brick b contain any set voxel?
  std::vector<std::uint8_t> mask_any(num_bricks(), 0);
  const Dims d = dims_;
  for (int k = 0; k < d.z; ++k) {
    const int bz = k / brick_size_;
    for (int j = 0; j < d.y; ++j) {
      const int by = j / brick_size_;
      std::size_t linear = mask.linear_index(0, j, k);
      for (int i = 0; i < d.x; ++i, ++linear) {
        if (mask[linear] != 0) {
          mask_any[brick_linear(i / brick_size_, by, bz)] = 1;
        }
      }
    }
  }

  out.assign(num_bricks(), 0);
  for (int bz = 0; bz < grid_.z; ++bz) {
    for (int by = 0; by < grid_.y; ++by) {
      for (int bx = 0; bx < grid_.x; ++bx) {
        const Range r = dilated_range(bx, by, bz);
        bool active = span_visible(tf, nonzero, r.lo, r.hi);
        if (!active) {
          // The overlay re-colors masked samples through the highlight
          // TF, so a brick whose neighbourhood touches the mask is only
          // skippable when that TF is also zero over the range.
          const int x0 = std::max(bx - 1, 0);
          const int x1 = std::min(bx + 1, grid_.x - 1);
          const int y0 = std::max(by - 1, 0);
          const int y1 = std::min(by + 1, grid_.y - 1);
          const int z0 = std::max(bz - 1, 0);
          const int z1 = std::min(bz + 1, grid_.z - 1);
          bool masked_near = false;
          for (int nz = z0; nz <= z1 && !masked_near; ++nz) {
            for (int ny = y0; ny <= y1 && !masked_near; ++ny) {
              for (int nx = x0; nx <= x1; ++nx) {
                if (mask_any[brick_linear(nx, ny, nz)] != 0) {
                  masked_near = true;
                  break;
                }
              }
            }
          }
          active = masked_near &&
                   span_visible(highlight_tf, highlight_nonzero, r.lo, r.hi);
        }
        out[brick_linear(bx, by, bz)] = active ? 1 : 0;
      }
    }
  }
}

std::vector<std::uint8_t> BrickIndex::serialize() const {
  std::vector<std::uint8_t> bytes(ranges_.size() * 2 * sizeof(float));
  std::uint8_t* cursor = bytes.data();
  for (const Range& r : ranges_) {
    std::memcpy(cursor, &r.lo, sizeof(float));
    cursor += sizeof(float);
    std::memcpy(cursor, &r.hi, sizeof(float));
    cursor += sizeof(float);
  }
  return bytes;
}

std::size_t BrickIndex::serialized_bytes(Dims volume_dims, int brick_size) {
  IFET_REQUIRE(brick_size > 0,
               "BrickIndex::serialized_bytes: brick size must be > 0");
  const Dims grid{grid_extent(volume_dims.x, brick_size),
                  grid_extent(volume_dims.y, brick_size),
                  grid_extent(volume_dims.z, brick_size)};
  return grid.count() * 2 * sizeof(float);
}

BrickIndex BrickIndex::deserialize(Dims volume_dims, int brick_size,
                                   const std::uint8_t* bytes,
                                   std::size_t size) {
  IFET_REQUIRE(brick_size > 0,
               "BrickIndex::deserialize: brick size must be > 0");
  if (size != serialized_bytes(volume_dims, brick_size)) {
    throw CorruptDataError(
        "BrickIndex::deserialize: section size does not match the brick "
        "count implied by the header geometry");
  }
  BrickIndex index;
  index.dims_ = volume_dims;
  index.brick_size_ = brick_size;
  index.grid_ = Dims{grid_extent(volume_dims.x, brick_size),
                     grid_extent(volume_dims.y, brick_size),
                     grid_extent(volume_dims.z, brick_size)};
  index.ranges_.resize(index.grid_.count());
  const std::uint8_t* cursor = bytes;
  for (Range& r : index.ranges_) {
    std::memcpy(&r.lo, cursor, sizeof(float));
    cursor += sizeof(float);
    std::memcpy(&r.hi, cursor, sizeof(float));
    cursor += sizeof(float);
    if (std::isnan(r.lo) || std::isnan(r.hi)) {
      throw CorruptDataError(
          "BrickIndex::deserialize: NaN brick range (the builder never "
          "writes NaN; the section is corrupt)");
    }
  }
  return index;
}

}  // namespace ifet
