file(REMOVE_RECURSE
  "CMakeFiles/stress_classifier_test.dir/stress_classifier_test.cpp.o"
  "CMakeFiles/stress_classifier_test.dir/stress_classifier_test.cpp.o.d"
  "stress_classifier_test"
  "stress_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
