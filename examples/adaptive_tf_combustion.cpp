// IATF on solver-generated turbulence (paper Sec 4.2.3 / Fig 5): run the
// incompressible plane-jet simulation, derive vorticity magnitude, and show
// that one static transfer function cannot span the growing data range
// while the IATF follows it.
//
// Run:  ./adaptive_tf_combustion [--out=DIR]
#include <filesystem>
#include <iostream>

#include "core/iatf.hpp"
#include "eval/metrics.hpp"
#include "flowsim/datasets.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  std::filesystem::create_directories(out_dir);

  std::cout << "running the plane-jet fluid simulation...\n";
  CombustionJetConfig config;
  config.dims = Dims{32, 48, 16};
  config.num_steps = 21;
  config.solver_steps_per_snapshot = 3;
  auto source = std::make_shared<CombustionJetSource>(config);
  CachedSequence sequence(source, 8);
  auto [vlo, vhi] = sequence.value_range();
  std::cout << "vorticity range grows " << source->max_vorticity(0)
            << " -> " << source->max_vorticity(20) << " over the run\n";

  auto key_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    double lo = source->feature_threshold(step);
    tf.add_band(lo, source->max_vorticity(step) * 1.02, 1.0, 0.1 * lo);
    return tf;
  };

  Iatf iatf(sequence);
  iatf.add_key_frame(0, key_tf(0));
  iatf.add_key_frame(10, key_tf(10));
  iatf.add_key_frame(20, key_tf(20));
  iatf.train(2000);

  RenderSettings settings;
  settings.width = 200;
  settings.height = 260;
  Raycaster caster(settings);
  Camera camera(0.9, 0.3, 2.6);
  TransferFunction1D static_tf = key_tf(0);
  for (int t : {0, 10, 20}) {
    const VolumeF& volume = sequence.step(t);
    Mask truth = source->feature_mask(t);
    auto recall_of = [&](const TransferFunction1D& tf) {
      Mask m(volume.dims());
      for (std::size_t i = 0; i < volume.size(); ++i) {
        m[i] = tf.opacity(volume[i]) >= 0.25 ? 1 : 0;
      }
      return score_mask(m, truth).recall();
    };
    TransferFunction1D adapted = iatf.evaluate(t);
    std::cout << "t=" << t << ": static TF recall " << recall_of(static_tf)
              << ", IATF recall " << recall_of(adapted) << "\n";
    write_ppm(caster.render(volume, adapted, ColorMap(), camera),
              out_dir + "/combustion_iatf_t" + std::to_string(t) + ".ppm");
  }
  std::cout << "wrote renders to " << out_dir << "/combustion_iatf_t*.ppm\n";
  return 0;
}
