// Fixture (should PASS): stream (layer 5) may use math (layer 1).
#include "math/vec.hpp"

int clamp_to_window(int x) { return x; }
