// Per-client pin admission control for the shared streaming tier.
//
// Every client session of the multi-tenant server (docs/SERVER.md) pins a
// small window of steps ({t-1, t, t+1} for 4D region growing) on the ONE
// process-wide CacheManager. Pins are exempt from eviction, so without a
// per-client ceiling a single client hinting a huge window would pin the
// whole budget and starve every other tenant into perpetual reload. The
// AdmissionController is that ceiling: it keeps a per-client ledger of
// pinned steps and admits window pins center-out until the client's
// `pin_quota_bytes` is spent; the rest of the window is *denied a pin* —
// and nothing else. Denied steps still load, still cache, still return
// exact bytes; they are merely evictable. Admission therefore shapes
// residency (performance) and never data (correctness) — the property the
// tight-vs-infinite-budget bitwise equivalence check in bench_perf_server
// rests on.
//
// The controller also keeps the per-client fairness metrics the eviction
// report is built from: `reloads` counts accesses that found a previously
// loaded step evicted (the price a client actually paid to the sharing),
// `denied_pins` counts quota refusals.
//
// Locking: mutex_ is a leaf at MutexRank::kAdmission — above the
// CacheManager rank, so the hot note_access() is legal on IFET_HOT fetch
// paths, and deliberately never held across CacheManager calls: set_window
// returns the pin/unpin delta for the *caller* to apply, which keeps the
// 35 -> 30 inversion structurally impossible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hot_path.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ifet {

/// Per-client admission counters (monotonic except the two gauges).
struct AdmissionStats {
  std::uint64_t accesses = 0;     ///< note_access calls (fetch attempts).
  std::uint64_t denied_pins = 0;  ///< Window steps refused a pin by quota.
  std::uint64_t reloads = 0;      ///< Accesses that found a step this client
                                  ///< had loaded before evicted again — the
                                  ///< client's realized eviction cost.
  std::uint64_t pressure_unpins = 0;  ///< Pins revoked by a pressure-driven
                                      ///< quota clamp (set_quota_scale).
  std::size_t pinned_steps = 0;   ///< Gauge: steps currently pinned.
  std::size_t pinned_bytes = 0;   ///< Gauge: bytes currently pinned.
};

/// Pin-set change computed by set_window()/release_client(); the caller
/// applies it to the CacheManager with the admission lock released.
struct WindowDelta {
  std::vector<int> pin;     ///< Newly admitted steps — pin these.
  std::vector<int> unpin;   ///< Steps that left the admitted set — unpin.
  std::vector<int> denied;  ///< Window steps refused by the quota.
};

class AdmissionController {
 public:
  /// `step_bytes` is the decoded payload size of one step (uniform across
  /// the sequence); `pin_quota_bytes` caps each client's pinned bytes
  /// (0 = unlimited); `num_steps` sizes the per-client access bitmaps.
  AdmissionController(std::size_t step_bytes, std::size_t pin_quota_bytes,
                      int num_steps);

  /// Admit a new client; returns its id (dense, never reused-while-active).
  int register_client() IFET_EXCLUDES(mutex_);

  /// Retire a client; returns the steps it still had admitted so the
  /// caller can unpin them.
  std::vector<int> release_client(int client) IFET_EXCLUDES(mutex_);

  /// Replace `client`'s window with [lo, hi], admitting steps nearest
  /// `center` first (ties: the earlier step) until the quota is spent.
  /// Returns the pin/unpin delta against the client's previous admitted
  /// set; `denied` lists the window steps the quota refused.
  WindowDelta set_window(int client, int lo, int hi, int center)
      IFET_EXCLUDES(mutex_);

  /// Hot-path bookkeeping for one fetch: bumps the access count and, when
  /// a previously loaded step is found non-resident, the reload count.
  /// Alloc-free: the `seen` bitmap was sized at register_client.
  IFET_HOT void note_access(int client, int step, bool resident)
      IFET_EXCLUDES(mutex_);

  AdmissionStats client_stats(int client) const IFET_EXCLUDES(mutex_);

  std::size_t pin_quota_bytes() const { return pin_quota_bytes_; }
  std::size_t step_bytes() const { return step_bytes_; }

  /// Steps the quota admits per client at the CURRENT pressure scale
  /// (never below 1; num_steps when unlimited and unclamped).
  std::size_t quota_steps() const;

  /// The unscaled per-client quota in steps (what 100% restores to).
  std::size_t quota_steps_base() const;

  // --- Pressure coupling (server/pressure.hpp) -----------------------------

  /// Scale every client's effective quota to `percent` (clamped to
  /// [1, 100]) and recompute each admitted set center-out against the
  /// client's remembered window — the exact set_window order, so restoring
  /// to 100 re-admits the same steps a fresh hint would (center first,
  /// ties to the earlier step). Returns one delta per affected client for
  /// the caller to apply to the CacheManager with the admission lock
  /// released, as always. Idempotent (a repeated scale returns no deltas);
  /// callers serialize scale changes (the one PressureMonitor does, under
  /// its kPressure mutex).
  std::vector<std::pair<int, WindowDelta>> set_quota_scale(int percent)
      IFET_EXCLUDES(mutex_);

  int quota_scale_percent() const {
    return quota_scale_percent_.load(std::memory_order_relaxed);
  }

  /// Pin demand at FULL quota: the steps all remembered windows would pin
  /// at 100%. This is the pressure signal — it deliberately ignores the
  /// live clamp, so clamping can never argue itself back below the exit
  /// threshold and oscillate the hysteresis. Alloc-free.
  IFET_HOT std::size_t demanded_pin_steps() const IFET_EXCLUDES(mutex_);

 private:
  struct Ledger {
    bool active = false;
    std::vector<int> admitted;       ///< Currently admitted (pinned) steps.
    std::vector<std::uint8_t> seen;  ///< step -> this client loaded it once.
    /// Last hinted window (set_window), so a quota rescale can replay the
    /// center-out admission without a fresh hint.
    bool has_window = false;
    int window_lo = 0;
    int window_hi = -1;
    int window_center = 0;
    AdmissionStats stats;
  };

  const std::size_t step_bytes_;
  const std::size_t pin_quota_bytes_;
  const int num_steps_;
  /// Pressure clamp in percent of the base quota (100 = unclamped).
  /// Atomic so the hot fetch path and quota_steps() read it lock-free.
  std::atomic<int> quota_scale_percent_{100};

  mutable OrderedMutex mutex_{MutexRank::kAdmission};
  std::vector<Ledger> clients_ IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
