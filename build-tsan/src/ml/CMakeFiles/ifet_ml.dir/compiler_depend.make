# Empty compiler generated dependencies file for ifet_ml.
# This may be replaced when dependencies are built.
