file(REMOVE_RECURSE
  "libifet_ml.a"
)
