file(REMOVE_RECURSE
  "CMakeFiles/tf_test.dir/tf_test.cpp.o"
  "CMakeFiles/tf_test.dir/tf_test.cpp.o.d"
  "tf_test"
  "tf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
