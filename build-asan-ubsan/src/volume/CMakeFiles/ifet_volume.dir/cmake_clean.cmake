file(REMOVE_RECURSE
  "CMakeFiles/ifet_volume.dir/components.cpp.o"
  "CMakeFiles/ifet_volume.dir/components.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/filters.cpp.o"
  "CMakeFiles/ifet_volume.dir/filters.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/histogram.cpp.o"
  "CMakeFiles/ifet_volume.dir/histogram.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/histogram2d.cpp.o"
  "CMakeFiles/ifet_volume.dir/histogram2d.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/octree.cpp.o"
  "CMakeFiles/ifet_volume.dir/octree.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/ops.cpp.o"
  "CMakeFiles/ifet_volume.dir/ops.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/resample.cpp.o"
  "CMakeFiles/ifet_volume.dir/resample.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/sequence.cpp.o"
  "CMakeFiles/ifet_volume.dir/sequence.cpp.o.d"
  "CMakeFiles/ifet_volume.dir/volume.cpp.o"
  "CMakeFiles/ifet_volume.dir/volume.cpp.o.d"
  "libifet_volume.a"
  "libifet_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
