# Empty compiler generated dependencies file for predictive_tracker_test.
# This may be replaced when dependencies are built.
