file(REMOVE_RECURSE
  "CMakeFiles/advisor_workflow.dir/advisor_workflow.cpp.o"
  "CMakeFiles/advisor_workflow.dir/advisor_workflow.cpp.o.d"
  "advisor_workflow"
  "advisor_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
