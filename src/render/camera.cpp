#include "render/camera.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

Camera::Camera(double azimuth, double elevation, double distance,
               double fov_y)
    : fov_y_(fov_y) {
  IFET_REQUIRE(distance > 0.0, "Camera distance must be positive");
  IFET_REQUIRE(fov_y > 0.0 && fov_y < 3.0, "Camera fov_y out of range");
  position_ = Vec3{distance * std::cos(elevation) * std::cos(azimuth),
                   distance * std::cos(elevation) * std::sin(azimuth),
                   distance * std::sin(elevation)};
  forward_ = (Vec3{0, 0, 0} - position_).normalized();
  Vec3 world_up{0, 0, 1};
  if (std::fabs(forward_.dot(world_up)) > 0.999) world_up = Vec3{0, 1, 0};
  right_ = forward_.cross(world_up).normalized();
  up_ = right_.cross(forward_);
}

Ray Camera::pixel_ray(int x, int y, int width, int height) const {
  const double aspect = static_cast<double>(width) / height;
  const double tan_half = std::tan(0.5 * fov_y_);
  const double ndc_x = (2.0 * (x + 0.5) / width - 1.0) * aspect * tan_half;
  const double ndc_y = (1.0 - 2.0 * (y + 0.5) / height) * tan_half;
  Vec3 dir = (forward_ + right_ * ndc_x + up_ * ndc_y).normalized();
  return Ray{position_, dir};
}

bool intersect_box(const Ray& ray, const Vec3& lo, const Vec3& hi,
                   double& t_near, double& t_far) {
  t_near = -1e30;
  t_far = 1e30;
  const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double dvec[3] = {ray.direction.x, ray.direction.y, ray.direction.z};
  const double lov[3] = {lo.x, lo.y, lo.z};
  const double hiv[3] = {hi.x, hi.y, hi.z};
  for (int a = 0; a < 3; ++a) {
    if (std::fabs(dvec[a]) < 1e-12) {
      if (o[a] < lov[a] || o[a] > hiv[a]) return false;
      continue;
    }
    double t0 = (lov[a] - o[a]) / dvec[a];
    double t1 = (hiv[a] - o[a]) / dvec[a];
    if (t0 > t1) std::swap(t0, t1);
    t_near = std::max(t_near, t0);
    t_far = std::min(t_far, t1);
  }
  t_near = std::max(t_near, 0.0);
  return t_far >= t_near;
}

}  // namespace ifet
