#include "io/compressed.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "io/checksum.hpp"
#include "util/io_error.hpp"
#include "volume/brick_index.hpp"

namespace ifet {

namespace {

constexpr char kMagic[] = "ifet-cseq";
// v2 container: the header line also carries the brick size, index
// entries widen to 32 bytes (payload offset/size + brick offset/size),
// and each step gets a CRC'd BrickIndex record next to its payload.
constexpr char kMagicV2[] = "ifet-cseq2";
// Fixed-size prefix of a per-step record: bits u8, lo f32, hi f32,
// payload-size u64. A CRC32 over prefix+payload may follow the payload
// (absent in legacy files; see io/checksum.hpp).
constexpr std::size_t kRecordPrefixBytes = 17;
constexpr std::size_t kRecordCrcBytes = 4;
constexpr std::size_t kIndexEntryBytesV1 = 16;
constexpr std::size_t kIndexEntryBytesV2 = 32;

inline std::uint32_t quant_levels(QuantBits bits) {
  return bits == QuantBits::k8 ? 255u : 65535u;
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back((v >> (8 * b)) & 0xff);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back((v >> (8 * b)) & 0xff);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return v;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(p[b]) << (8 * b);
  return v;
}

}  // namespace

CompressedVolume compress_volume(const VolumeF& volume, QuantBits bits) {
  IFET_REQUIRE(!volume.empty(), "compress_volume: empty volume");
  CompressedVolume out;
  out.dims = volume.dims();
  out.bits = bits;
  float lo = volume[0], hi = volume[0];
  for (float v : volume.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  out.value_lo = lo;
  out.value_hi = hi;
  const double span = hi > lo ? hi - lo : 1.0;
  const std::uint32_t levels = quant_levels(bits);

  // Quantize, then run-length encode (run byte 1..255 + sample).
  auto quantize = [&](float v) {
    double t = (v - lo) / span;
    return static_cast<std::uint32_t>(std::lround(t * levels));
  };
  std::uint32_t current = quantize(volume[0]);
  std::uint32_t run = 0;
  auto flush = [&]() {
    while (run > 0) {
      std::uint8_t chunk = static_cast<std::uint8_t>(std::min(run, 255u));
      out.payload.push_back(chunk);
      out.payload.push_back(static_cast<std::uint8_t>(current & 0xff));
      if (bits == QuantBits::k16) {
        out.payload.push_back(static_cast<std::uint8_t>(current >> 8));
      }
      run -= chunk;
    }
  };
  for (float v : volume.data()) {
    std::uint32_t q = quantize(v);
    if (q == current) {
      ++run;
    } else {
      flush();
      current = q;
      run = 1;
    }
  }
  flush();
  return out;
}

VolumeF decompress_volume(const CompressedVolume& compressed) {
  VolumeF out(compressed.dims);
  const double span = compressed.value_hi > compressed.value_lo
                          ? compressed.value_hi - compressed.value_lo
                          : 1.0;
  const std::uint32_t levels = quant_levels(compressed.bits);
  const int sample_bytes = compressed.bits == QuantBits::k8 ? 1 : 2;
  std::size_t cursor = 0;
  std::size_t voxel = 0;
  const auto& payload = compressed.payload;
  while (voxel < out.size()) {
    if (cursor + 1 + static_cast<std::size_t>(sample_bytes) > payload.size()) {
      throw CorruptDataError(
          "decompress_volume: RLE stream ends mid-volume (truncated "
          "payload)");
    }
    std::uint32_t run = payload[cursor++];
    std::uint32_t q = payload[cursor++];
    if (sample_bytes == 2) {
      q |= static_cast<std::uint32_t>(payload[cursor++]) << 8;
    }
    float value = static_cast<float>(
        compressed.value_lo + span * q / static_cast<double>(levels));
    if (voxel + run > out.size()) {
      throw CorruptDataError("decompress_volume: run overflows volume");
    }
    for (std::uint32_t r = 0; r < run; ++r) out[voxel++] = value;
  }
  if (cursor != payload.size()) {
    throw CorruptDataError("decompress_volume: trailing payload bytes");
  }
  return out;
}

double quantization_error_bound(const CompressedVolume& compressed) {
  double span = compressed.value_hi - compressed.value_lo;
  if (span <= 0.0) return 0.0;
  return 0.5 * span / quant_levels(compressed.bits);
}

// --- Sequence container ------------------------------------------------------

struct CompressedSequenceWriter::Impl {
  std::ofstream out;
  std::streampos index_pos;
  std::vector<std::uint8_t> index_bytes;
  int num_steps;
  bool with_checksum;
  int brick_size;
};

CompressedSequenceWriter::CompressedSequenceWriter(
    const std::string& path, Dims dims, int num_steps,
    std::pair<double, double> value_range, bool with_checksum,
    int brick_size)
    : impl_(std::make_unique<Impl>()) {
  IFET_REQUIRE(num_steps > 0, "CompressedSequenceWriter: need steps");
  IFET_REQUIRE(brick_size >= 0,
               "CompressedSequenceWriter: brick size must be >= 0");
  impl_->out.open(path, std::ios::binary);
  if (!impl_->out.good()) {
    throw NotFoundError("CompressedSequenceWriter: cannot open " + path);
  }
  impl_->num_steps = num_steps;
  impl_->with_checksum = with_checksum;
  impl_->brick_size = brick_size;
  if (brick_size > 0) {
    impl_->out << kMagicV2 << ' ' << dims.x << ' ' << dims.y << ' ' << dims.z
               << ' ' << num_steps << ' ' << value_range.first << ' '
               << value_range.second << ' ' << brick_size << '\n';
  } else {
    impl_->out << kMagic << ' ' << dims.x << ' ' << dims.y << ' ' << dims.z
               << ' ' << num_steps << ' ' << value_range.first << ' '
               << value_range.second << '\n';
  }
  impl_->index_pos = impl_->out.tellp();
  // Reserve the index region, filled in close().
  const std::size_t entry_bytes =
      brick_size > 0 ? kIndexEntryBytesV2 : kIndexEntryBytesV1;
  std::vector<char> zeros(static_cast<std::size_t>(num_steps) * entry_bytes,
                          0);
  impl_->out.write(zeros.data(),
                   static_cast<std::streamsize>(zeros.size()));
}

CompressedSequenceWriter::~CompressedSequenceWriter() {
  if (impl_ && impl_->out.is_open()) {
    if (steps_written_ == impl_->num_steps) {
      close();
    } else {
      // Incomplete sequence: never throw from a destructor. Finalize
      // explicitly anyway — write the partial index so the reader can
      // report *which* step the file truncates at (CorruptDataError with
      // the step number) instead of rejecting an all-zero index with a
      // generic message. ofstream without exceptions enabled only sets
      // failbit on error, so this cannot throw.
      impl_->out.seekp(impl_->index_pos);
      impl_->out.write(
          reinterpret_cast<const char*>(impl_->index_bytes.data()),
          static_cast<std::streamsize>(impl_->index_bytes.size()));
      impl_->out.close();
    }
  }
}

void CompressedSequenceWriter::append(const CompressedVolume& volume) {
  IFET_REQUIRE(steps_written_ < impl_->num_steps,
               "CompressedSequenceWriter: too many steps appended");
  // Per-step record: bits u8, lo f32, hi f32, payload u64 + bytes, then a
  // CRC32 over everything before it (omitted in legacy mode).
  std::vector<std::uint8_t> record;
  record.push_back(static_cast<std::uint8_t>(volume.bits));
  std::uint8_t fbytes[4];
  std::memcpy(fbytes, &volume.value_lo, 4);
  record.insert(record.end(), fbytes, fbytes + 4);
  std::memcpy(fbytes, &volume.value_hi, 4);
  record.insert(record.end(), fbytes, fbytes + 4);
  append_u64(record, volume.payload.size());
  record.insert(record.end(), volume.payload.begin(), volume.payload.end());
  if (impl_->with_checksum) {
    append_u32(record, crc32(record.data(), record.size()));
  }

  auto offset = static_cast<std::uint64_t>(impl_->out.tellp());
  impl_->out.write(reinterpret_cast<const char*>(record.data()),
                   static_cast<std::streamsize>(record.size()));
  if (!impl_->out.good()) {
    throw IoError("CompressedSequenceWriter: write failed");
  }
  append_u64(impl_->index_bytes, offset);
  append_u64(impl_->index_bytes, record.size());

  if (impl_->brick_size > 0) {
    // Brick ranges MUST cover the *reconstructed* values the renderer will
    // actually sample: quantization can push a decoded voxel up to half a
    // quant step outside the original range, so building from `volume`'s
    // decoded form (not the pre-compression floats) keeps the skip
    // condition provable. Always CRC'd — the section is new, so there is
    // no checksum-less legacy to emulate.
    const BrickIndex bricks =
        BrickIndex::build(decompress_volume(volume), impl_->brick_size);
    std::vector<std::uint8_t> brick_record = bricks.serialize();
    append_u32(brick_record, crc32(brick_record.data(), brick_record.size()));
    auto brick_offset = static_cast<std::uint64_t>(impl_->out.tellp());
    impl_->out.write(reinterpret_cast<const char*>(brick_record.data()),
                     static_cast<std::streamsize>(brick_record.size()));
    if (!impl_->out.good()) {
      throw IoError("CompressedSequenceWriter: brick-record write failed");
    }
    append_u64(impl_->index_bytes, brick_offset);
    append_u64(impl_->index_bytes, brick_record.size());
  }
  ++steps_written_;
}

void CompressedSequenceWriter::close() {
  IFET_REQUIRE(steps_written_ == impl_->num_steps,
               "CompressedSequenceWriter: closed before all steps appended");
  impl_->out.seekp(impl_->index_pos);
  impl_->out.write(reinterpret_cast<const char*>(impl_->index_bytes.data()),
                   static_cast<std::streamsize>(impl_->index_bytes.size()));
  impl_->out.close();
}

CompressedFileSource::CompressedFileSource(const std::string& path)
    : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw NotFoundError("CompressedFileSource: cannot open " + path);
  }
  std::string line;
  std::getline(in, line);
  std::istringstream header(line);
  std::string magic;
  header >> magic >> dims_.x >> dims_.y >> dims_.z >> num_steps_ >>
      range_.first >> range_.second;
  const bool v2 = magic == kMagicV2;
  if (v2) {
    header >> brick_size_;
    if (brick_size_ <= 0) {
      throw CorruptDataError("CompressedFileSource: v2 header without a "
                             "positive brick size in " +
                             path);
    }
  }
  if ((magic != kMagic && !v2) || !header || num_steps_ <= 0) {
    throw CorruptDataError("CompressedFileSource: bad header in " + path);
  }
  const std::size_t entry_bytes =
      v2 ? kIndexEntryBytesV2 : kIndexEntryBytesV1;
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(num_steps_) *
                                entry_bytes);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (in.gcount() != static_cast<std::streamsize>(raw.size())) {
    throw CorruptDataError("CompressedFileSource: truncated index in " +
                           path);
  }
  index_.resize(static_cast<std::size_t>(num_steps_));
  for (int s = 0; s < num_steps_; ++s) {
    IndexEntry& entry = index_[static_cast<std::size_t>(s)];
    const std::uint8_t* p = raw.data() + entry_bytes * s;
    entry.offset = read_u64(p);
    entry.size = read_u64(p + 8);
    if (v2) {
      entry.brick_offset = read_u64(p + 16);
      entry.brick_size = read_u64(p + 24);
    } else {
      entry.brick_offset = 0;
      entry.brick_size = 0;
    }
    if (entry.size == 0 || (v2 && entry.brick_size == 0)) {
      throw CorruptDataError(
          "CompressedFileSource: " + path + " truncates at step " +
          std::to_string(s) +
          " (writer closed before all steps were appended)");
    }
  }
}

VolumeF CompressedFileSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "CompressedFileSource: step out of range");
  const IndexEntry& entry = index_[static_cast<std::size_t>(step)];
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) {
    throw NotFoundError("CompressedFileSource: cannot reopen " + path_);
  }
  in.seekg(static_cast<std::streamoff>(entry.offset));
  std::vector<std::uint8_t> record(entry.size);
  in.read(reinterpret_cast<char*>(record.data()),
          static_cast<std::streamsize>(record.size()));
  if (in.gcount() != static_cast<std::streamsize>(record.size())) {
    throw CorruptDataError("CompressedFileSource: truncated record for step " +
                           std::to_string(step) + " in " + path_);
  }
  if (record.size() < kRecordPrefixBytes) {
    throw CorruptDataError("CompressedFileSource: record too small for step " +
                           std::to_string(step) + " in " + path_);
  }
  CompressedVolume volume;
  volume.dims = dims_;
  volume.bits = static_cast<QuantBits>(record[0]);
  std::memcpy(&volume.value_lo, record.data() + 1, 4);
  std::memcpy(&volume.value_hi, record.data() + 5, 4);
  const std::uint64_t payload_size = read_u64(record.data() + 9);
  if (payload_size > record.size() - kRecordPrefixBytes) {
    throw CorruptDataError(
        "CompressedFileSource: payload size overruns record for step " +
        std::to_string(step) + " in " + path_);
  }
  const std::size_t checked_bytes =
      kRecordPrefixBytes + static_cast<std::size_t>(payload_size);
  if (record.size() == checked_bytes + kRecordCrcBytes) {
    const std::uint32_t expected = read_u32(record.data() + checked_bytes);
    if (crc32(record.data(), checked_bytes) != expected) {
      ++checksum_counters().mismatches;
      throw CorruptDataError(
          "CompressedFileSource: checksum mismatch for step " +
          std::to_string(step) + " in " + path_ +
          " (frame corrupted on disk or in transit)");
    }
    ++checksum_counters().verified;
  } else if (record.size() == checked_bytes) {
    ++checksum_counters().unverified;  // legacy checksum-less frame
  } else {
    throw CorruptDataError(
        "CompressedFileSource: payload size mismatch for step " +
        std::to_string(step) + " in " + path_);
  }
  volume.payload.assign(record.begin() + kRecordPrefixBytes,
                        record.begin() + static_cast<std::ptrdiff_t>(
                                             checked_bytes));
  return decompress_volume(volume);
}

std::shared_ptr<const BrickIndex> CompressedFileSource::brick_metadata(
    int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "CompressedFileSource: step out of range");
  if (brick_size_ == 0) return nullptr;  // v1 container: no brick section
  const IndexEntry& entry = index_[static_cast<std::size_t>(step)];
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) {
    throw NotFoundError("CompressedFileSource: cannot reopen " + path_);
  }
  // Seek + read of the small brick record only; the step's compressed
  // payload is never read, let alone decoded.
  in.seekg(static_cast<std::streamoff>(entry.brick_offset));
  std::vector<std::uint8_t> record(entry.brick_size);
  in.read(reinterpret_cast<char*>(record.data()),
          static_cast<std::streamsize>(record.size()));
  if (in.gcount() != static_cast<std::streamsize>(record.size())) {
    throw CorruptDataError(
        "CompressedFileSource: truncated brick record for step " +
        std::to_string(step) + " in " + path_);
  }
  if (record.size() <= kRecordCrcBytes) {
    throw CorruptDataError(
        "CompressedFileSource: brick record too small for step " +
        std::to_string(step) + " in " + path_);
  }
  const std::size_t checked_bytes = record.size() - kRecordCrcBytes;
  const std::uint32_t expected = read_u32(record.data() + checked_bytes);
  if (crc32(record.data(), checked_bytes) != expected) {
    ++checksum_counters().mismatches;
    throw CorruptDataError(
        "CompressedFileSource: brick-record checksum mismatch for step " +
        std::to_string(step) + " in " + path_ +
        " (section corrupted on disk or in transit)");
  }
  ++checksum_counters().verified;
  return std::make_shared<const BrickIndex>(BrickIndex::deserialize(
      dims_, brick_size_, record.data(), checked_bytes));
}

std::size_t CompressedFileSource::total_payload_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : index_) total += entry.size;
  return total;
}

void write_compressed_sequence(const VolumeSource& source,
                               const std::string& path, QuantBits bits,
                               bool with_checksum, int brick_size) {
  CompressedSequenceWriter writer(path, source.dims(), source.num_steps(),
                                  source.value_range(), with_checksum,
                                  brick_size);
  for (int s = 0; s < source.num_steps(); ++s) {
    writer.append(compress_volume(source.generate(s), bits));
  }
  writer.close();
}

}  // namespace ifet
