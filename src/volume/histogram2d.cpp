#include "volume/histogram2d.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "volume/ops.hpp"

namespace ifet {

Histogram2D::Histogram2D(const VolumeF& volume, int value_bins,
                         int gradient_bins, double value_lo, double value_hi)
    : value_bins_(value_bins),
      gradient_bins_(gradient_bins),
      value_lo_(value_lo),
      value_hi_(value_hi),
      gradient_max_(0.0) {
  IFET_REQUIRE(value_bins > 0 && gradient_bins > 0,
               "Histogram2D: bin counts must be positive");
  IFET_REQUIRE(value_hi > value_lo, "Histogram2D: degenerate value range");
  IFET_REQUIRE(!volume.empty(), "Histogram2D: empty volume");

  VolumeF gradients = gradient_magnitude(volume);
  gradient_max_ = static_cast<double>(
      *std::max_element(gradients.data().begin(), gradients.data().end()));
  const double gspan = gradient_max_ > 0.0 ? gradient_max_ : 1.0;

  counts_.assign(static_cast<std::size_t>(value_bins_) *
                     static_cast<std::size_t>(gradient_bins_),
                 0);
  gradient_sum_.assign(static_cast<std::size_t>(value_bins_), 0.0);
  value_bin_total_.assign(static_cast<std::size_t>(value_bins_), 0);

  const double vspan = value_hi_ - value_lo_;
  for (std::size_t i = 0; i < volume.size(); ++i) {
    int vbin = static_cast<int>((volume[i] - value_lo_) / vspan *
                                value_bins_);
    vbin = std::clamp(vbin, 0, value_bins_ - 1);
    double g = gradients[i];
    int gbin = static_cast<int>(g / gspan * gradient_bins_);
    gbin = std::clamp(gbin, 0, gradient_bins_ - 1);
    ++counts_[static_cast<std::size_t>(vbin) *
                  static_cast<std::size_t>(gradient_bins_) +
              static_cast<std::size_t>(gbin)];
    gradient_sum_[static_cast<std::size_t>(vbin)] += g;
    ++value_bin_total_[static_cast<std::size_t>(vbin)];
    ++total_;
  }
}

std::size_t Histogram2D::count(int value_bin, int gradient_bin) const {
  IFET_REQUIRE(value_bin >= 0 && value_bin < value_bins_ &&
                   gradient_bin >= 0 && gradient_bin < gradient_bins_,
               "Histogram2D::count: bin out of range");
  return counts_[static_cast<std::size_t>(value_bin) *
                     static_cast<std::size_t>(gradient_bins_) +
                 static_cast<std::size_t>(gradient_bin)];
}

double Histogram2D::mean_gradient_of_value_bin(int value_bin) const {
  IFET_REQUIRE(value_bin >= 0 && value_bin < value_bins_,
               "Histogram2D: value bin out of range");
  std::size_t n = value_bin_total_[static_cast<std::size_t>(value_bin)];
  return n > 0 ? gradient_sum_[static_cast<std::size_t>(value_bin)] /
                     static_cast<double>(n)
               : 0.0;
}

TransferFunction1D Histogram2D::boundary_emphasis_tf(
    double peak_opacity) const {
  TransferFunction1D tf(value_lo_, value_hi_);
  // Map TF entries onto value bins; opacity tracks the mean gradient.
  double peak_gradient = 0.0;
  for (int b = 0; b < value_bins_; ++b) {
    peak_gradient = std::max(peak_gradient, mean_gradient_of_value_bin(b));
  }
  if (peak_gradient <= 0.0) return tf;  // uniform volume: all transparent
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    double value = tf.entry_value(e);
    int vbin = static_cast<int>((value - value_lo_) /
                                (value_hi_ - value_lo_) * value_bins_);
    vbin = std::clamp(vbin, 0, value_bins_ - 1);
    tf.set_opacity_entry(
        e, peak_opacity * mean_gradient_of_value_bin(vbin) / peak_gradient);
  }
  return tf;
}

}  // namespace ifet
