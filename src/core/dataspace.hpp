// Learning-based feature extraction in the data space (paper Sec 4.3).
//
// The scientist paints positive ("feature") and negative ("not the
// feature") voxels on a few time steps; each painted voxel becomes one
// training sample whose input is its feature vector (value, shell
// neighborhood, position, time — see feature_vector.hpp) and whose target
// is the class certainty. After training, classify() runs the network over
// every voxel of a step, producing a certainty volume that the renderer
// uses to assign opacity — and that can suppress the small "noise"
// features of the reionization study while preserving large-structure
// detail (Figs 7-8).
#pragma once

#include <cstdint>
#include <memory>

#include "core/feature_vector.hpp"
#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "nn/training.hpp"
#include "volume/sequence.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct DataSpaceConfig {
  FeatureVectorSpec spec;
  int hidden_units = 12;
  BackpropConfig backprop{0.3, 0.7};
  std::uint64_t seed = 4321;
};

/// A painted training voxel.
struct PaintedVoxel {
  Index3 voxel;
  int step = 0;
  double certainty = 0.0;  ///< 1 = feature of interest, 0 = not.
};

class DataSpaceClassifier {
 public:
  DataSpaceClassifier(int num_steps, double value_lo, double value_hi,
                      const DataSpaceConfig& config = {});

  // The trainer references the classifier's own network, so the object must
  // stay put; hold it by unique_ptr where reseating is needed.
  DataSpaceClassifier(const DataSpaceClassifier&) = delete;
  DataSpaceClassifier& operator=(const DataSpaceClassifier&) = delete;

  const FeatureVectorSpec& spec() const { return config_.spec; }

  /// Add painted voxels from `volume` (the key frame at `step`). The volume
  /// is copied for later training-set re-assembly.
  void add_samples(const VolumeF& volume, int step,
                   const std::vector<PaintedVoxel>& painted);

  /// Out-of-core form: read the key frame through `sequence` and keep only
  /// a (sequence, step) reference for re-assembly — the step is re-fetched
  /// through the sequence's cache instead of pinned in a private copy.
  /// `sequence` must outlive the classifier (or at least every later call
  /// that re-assembles samples).
  void add_samples(const VolumeSequence& sequence, int step,
                   const std::vector<PaintedVoxel>& painted);

  /// Re-derive the shell radius from all positive samples painted so far
  /// (paper: "this distance is data dependent and derived according to the
  /// characteristics of the selected features"). Existing training samples
  /// are re-assembled under the new radius. `mask_dims` gives the volume
  /// extents the painted coordinates live in.
  void derive_shell_radius_from_samples(Dims mask_dims);

  double shell_radius() const { return config_.spec.shell_radius; }

  /// Training passes.
  double train(int epochs);
  double train_for(double budget_ms);
  std::size_t training_samples() const { return training_set_.size(); }
  double last_mse() const { return trainer_.last_mse(); }

  /// Voxels fed to the flat inference engine per forward_batch call. Large
  /// enough to amortize the batch setup, small enough that the per-worker
  /// feature matrix (kClassifyBatchSize x spec width doubles) stays in
  /// cache.
  static constexpr int kClassifyBatchSize = 256;

  /// Per-voxel certainty in [0,1] for the entire step (thread-parallel).
  /// Voxels are batched through a FlatMlp rebuilt from the live network on
  /// weight change; output is bitwise identical to classify_scalar().
  VolumeF classify(const VolumeF& volume, int step) const;

  /// Streamed form: fetch the step through the sequence and hint the next
  /// step so its decode overlaps this step's classification.
  VolumeF classify(const VolumeSequence& sequence, int step) const;

  /// Reference implementation: one scalar forward per voxel. Kept for the
  /// parity tests and the bench baseline; prefer classify().
  VolumeF classify_scalar(const VolumeF& volume, int step) const;

  /// Certainty of a single voxel.
  double classify_voxel(const VolumeF& volume, int step, int i, int j,
                        int k) const;

  /// classify() thresholded at `cut`.
  Mask classify_mask(const VolumeF& volume, int step, double cut = 0.5) const;
  Mask classify_mask(const VolumeSequence& sequence, int step,
                     double cut = 0.5) const;

  /// Classify only one axis-aligned slice (the interface's fast feedback
  /// path, Sec 6). Axis: 0=X (slice index i), 1=Y, 2=Z. Returns a
  /// width*height row-major certainty image.
  std::vector<float> classify_slice(const VolumeF& volume, int step, int axis,
                                    int slice) const;
  std::vector<float> classify_slice(const VolumeSequence& sequence, int step,
                                    int axis, int slice) const;

  /// Sec 6 property toggling: rebuild the classifier for a new spec,
  /// transferring hidden/output weights and the first-layer weights of the
  /// input components both specs share. The training set is discarded
  /// (painted samples must be re-added; the session layer handles that).
  std::unique_ptr<DataSpaceClassifier> with_spec(
      const FeatureVectorSpec& new_spec) const;

  const Mlp& network() const { return network_; }

 private:
  /// Record of a painted sample so inputs can be re-assembled when the
  /// shell radius or the spec changes.
  struct RawSample {
    PaintedVoxel painted;
    std::vector<double> input;  // assembled under the current spec
  };

  void rebuild_training_set();

  DataSpaceConfig config_;
  int num_steps_;
  double value_lo_, value_hi_;
  Mlp network_;
  TrainingSet training_set_;
  Trainer trainer_;
  // The painted voxels along with the values their inputs were read from:
  // we keep a copy of each sampled input so re-deriving only needs dims.
  std::vector<RawSample> raw_samples_;
  // Source volumes seen by add_samples, kept per (step) for re-assembly.
  // Either an owned copy (in-memory path) or a sequence reference the step
  // is re-fetched through on demand (out-of-core path).
  struct StepVolume {
    int step = 0;
    VolumeF volume;
    const VolumeSequence* sequence = nullptr;
    const VolumeF& get() const {
      return sequence != nullptr ? sequence->step(step) : volume;
    }
  };
  std::vector<StepVolume> sample_volumes_;
  // Flat inference engine rebuilt from network_ whenever its params hash
  // changes (i.e. after training); shared by all classify paths.
  FlatMlpCache flat_cache_;

  void add_samples_impl(const VolumeF& volume, int step,
                        const std::vector<PaintedVoxel>& painted,
                        const VolumeSequence* sequence);

  FeatureContext context_for(const VolumeF& volume, int step) const;
};

}  // namespace ifet
