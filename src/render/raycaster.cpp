#include "render/raycaster.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "parallel/thread_pool.hpp"
#include "render/ray_packet.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/timer.hpp"
#include "volume/ops.hpp"

namespace ifet {

namespace {

/// World-space box of a volume: largest axis spans [-0.5, 0.5].
struct WorldBox {
  Vec3 lo, hi;
  Vec3 scale;   ///< world -> voxel scale per axis
  Vec3 offset;  ///< voxel = (world - lo) * scale (then -0.5 voxel centering)

  explicit WorldBox(const Dims& d) {
    const double m = std::max({d.x, d.y, d.z});
    Vec3 half{0.5 * d.x / m, 0.5 * d.y / m, 0.5 * d.z / m};
    lo = -half;
    hi = half;
    scale = Vec3{d.x / (hi.x - lo.x), d.y / (hi.y - lo.y),
                 d.z / (hi.z - lo.z)};
  }

  Vec3 to_voxel(const Vec3& world) const {
    // Voxel centers at integer coordinates: voxel i covers
    // [i-0.5, i+0.5) in sample space.
    return Vec3{(world.x - lo.x) * scale.x - 0.5,
                (world.y - lo.y) * scale.y - 0.5,
                (world.z - lo.z) * scale.z - 0.5};
  }
};

inline std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(clamp(v, 0.0, 1.0) * 255.0 + 0.5);
}

/// Largest sample index n with t0 + n*dt <= t1. Both marching paths index
/// samples as t = t0 + i*dt (never an accumulated t += dt), so a brick
/// skip is an index jump that lands on EXACTLY the position the unskipped
/// march would have sampled — the root of the bitwise-identity contract.
IFET_HOT inline long march_last_index(double t0, double t1, double dt) {
  long n = static_cast<long>((t1 - t0) / dt);
  while (t0 + static_cast<double>(n + 1) * dt <= t1) ++n;
  while (n >= 0 && t0 + static_cast<double>(n) * dt > t1) --n;
  return n;
}

/// Per-ray brick traversal state for empty-space skipping.
///
/// Activity decisions use the affine form vox(t) = base + slope*t, which
/// mirrors Plan::to_voxel(origin + direction*t) up to FP rounding; the
/// one-brick dilation baked into the activity flags (BrickIndex::classify)
/// absorbs that disagreement — and the up-to-one-brick overshoot of the
/// analytic exit crossing — so any sample this walker skips is provably
/// transparent no matter which side of a brick face exact addressing puts
/// it on.
struct BrickWalk {
  const BrickIndex* bricks;
  const std::uint8_t* active;
  Dims grid;
  Dims vdims;
  int bsize;
  Vec3 base, slope;

  IFET_HOT BrickWalk(const Raycaster::Plan& plan, const Ray& ray)
      : bricks(plan.bricks.get()),
        active(plan.brick_active.data()),
        grid(plan.bricks->grid()),
        vdims(plan.bricks->volume_dims()),
        bsize(plan.bricks->brick_size()),
        base(plan.to_voxel(ray.origin)),
        slope(Vec3{ray.direction.x * plan.box_scale.x,
                   ray.direction.y * plan.box_scale.y,
                   ray.direction.z * plan.box_scale.z}) {}

  /// Brick coordinate of a continuous sample coordinate along one axis.
  /// Clamping matches the sampler: positions outside [0, extent-1] tap the
  /// border voxels, so they belong to the border bricks.
  IFET_HOT int cell(double v, int extent) const {
    int c = static_cast<int>(std::floor(v));
    if (c < 0) c = 0;
    if (c > extent - 1) c = extent - 1;
    return c / bsize;
  }

  /// Activity of the brick containing sample position vox(t); the brick
  /// coordinates are returned for the exit computation.
  IFET_HOT bool is_active(double t, int* bx, int* by, int* bz) const {
    *bx = cell(base.x + slope.x * t, vdims.x);
    *by = cell(base.y + slope.y * t, vdims.y);
    *bz = cell(base.z + slope.z * t, vdims.z);
    return active[bricks->brick_linear(*bx, *by, *bz)] != 0;
  }

  /// Analytic ray–brick interval clip: the first sample index after `i`
  /// whose position leaves brick (bx,by,bz). In continuous sample space
  /// the brick's cell spans [b*B, (b+1)*B) per axis (border cells extend
  /// outward through the sampler's clamp, which the crossings-ahead guard
  /// handles naturally). Always returns >= i+1, so the walk makes
  /// progress; an undershoot just re-skips, an overshoot is covered by the
  /// dilation margin.
  IFET_HOT long jump_index(double t0, double dt, long i, double t, int bx,
                           int by, int bz) const {
    const double kInf = std::numeric_limits<double>::infinity();
    double t_exit = kInf;
    const double b[3] = {static_cast<double>(bx), static_cast<double>(by),
                         static_cast<double>(bz)};
    const double s[3] = {slope.x, slope.y, slope.z};
    const double a[3] = {base.x, base.y, base.z};
    for (int axis = 0; axis < 3; ++axis) {
      if (s[axis] == 0.0) continue;
      const double boundary =
          (s[axis] > 0.0 ? b[axis] + 1.0 : b[axis]) * bsize;
      const double tc = (boundary - a[axis]) / s[axis];
      if (tc > t && tc < t_exit) t_exit = tc;
    }
    if (t_exit == kInf) return i + 1;
    const long j = static_cast<long>(std::ceil((t_exit - t0) / dt));
    return j > i ? j : i + 1;
  }
};

}  // namespace

ImageRgb8 Raycaster::render_step(const VolumeSequence& sequence, int step,
                                 const TransferFunction1D& tf,
                                 const ColorMap& colors, const Camera& camera,
                                 const HighlightLayer* highlight,
                                 RenderStats* stats,
                                 bool prefetch_next) const {
  if (prefetch_next) sequence.prefetch_hint(step + 1);
  // Ingest-time brick metadata when the sequence serves it (v2 .cvol via
  // the streaming tier); the plan rebuilds from the volume otherwise.
  std::shared_ptr<const BrickIndex> bricks =
      settings_.empty_space_skipping ? sequence.brick_index(step) : nullptr;
  return render_impl(sequence.step(step), tf, colors, camera, highlight,
                     nullptr, stats, std::move(bricks));
}

Raycaster::Raycaster(const RenderSettings& settings) : settings_(settings) {
  IFET_REQUIRE(settings_.width > 0 && settings_.height > 0,
               "Raycaster: image dimensions must be positive");
  IFET_REQUIRE(settings_.step_voxels > 0.0,
               "Raycaster: step size must be positive");
}

ImageRgb8 Raycaster::render(const VolumeF& volume,
                            const TransferFunction1D& tf,
                            const ColorMap& colors, const Camera& camera,
                            const HighlightLayer* highlight,
                            RenderStats* stats) const {
  return render_impl(volume, tf, colors, camera, highlight, nullptr, stats);
}

ImageRgb8 Raycaster::render_classified(const VolumeF& volume,
                                       const VolumeF& certainty,
                                       const TransferFunction1D& tf,
                                       const ColorMap& colors,
                                       const Camera& camera,
                                       RenderStats* stats) const {
  IFET_REQUIRE(certainty.dims() == volume.dims(),
               "Raycaster: certainty volume dimension mismatch");
  IFET_REQUIRE(settings_.mode == CompositingMode::kFrontToBack,
               "Raycaster: the pre-classified render requires "
               "emission-absorption compositing");
  return render_impl(volume, tf, colors, camera, nullptr, &certainty, stats);
}

IFET_DETERMINISTIC Raycaster::Plan Raycaster::prepare_plan(
    const VolumeF& volume, const TransferFunction1D& tf,
    const ColorMap& colors, const Camera& camera,
    const HighlightLayer* highlight, const VolumeF* certainty,
    std::shared_ptr<const BrickIndex> bricks) const {
  if (highlight != nullptr) {
    IFET_REQUIRE(highlight->mask != nullptr && highlight->tf != nullptr,
                 "Raycaster: highlight layer needs mask and TF");
    IFET_REQUIRE(highlight->mask->dims() == volume.dims(),
                 "Raycaster: highlight mask dimension mismatch");
    IFET_REQUIRE(settings_.mode == CompositingMode::kFrontToBack,
                 "Raycaster: the tracked-feature highlight requires "
                 "emission-absorption compositing (MIP has no ordering to "
                 "overlay into)");
  }
  if (certainty != nullptr) {
    IFET_REQUIRE(certainty->dims() == volume.dims(),
                 "Raycaster: certainty volume dimension mismatch");
  }
  const Dims d = volume.dims();
  const WorldBox box(d);
  Plan plan;
  plan.volume = &volume;
  plan.tf = &tf;
  plan.colors = &colors;
  plan.camera = &camera;
  plan.highlight = highlight;
  plan.certainty = certainty;
  plan.box_lo = box.lo;
  plan.box_hi = box.hi;
  plan.box_scale = box.scale;
  // Step length in world units: step_voxels voxels of the largest axis.
  const double max_dim = std::max({d.x, d.y, d.z});
  plan.dt = settings_.step_voxels / max_dim;
  plan.value_span = tf.value_hi() - tf.value_lo();
  plan.light_dir = (camera.position() - Vec3{0, 0, 0}).normalized();
  if (settings_.empty_space_skipping) {
    if (bricks == nullptr) {
      // Legacy fallback: no ingest-time metadata, one extra volume pass.
      bricks = std::make_shared<const BrickIndex>(BrickIndex::build(volume));
    }
    IFET_REQUIRE(bricks->volume_dims() == d,
                 "Raycaster: brick index dimension mismatch");
    plan.bricks = std::move(bricks);
    // Fold the frame's TF into per-brick activity once; render_rows then
    // clips inactive bricks out of every ray analytically.
    if (highlight != nullptr) {
      plan.bricks->classify_with_highlight(tf, *highlight->mask,
                                           *highlight->tf, plan.brick_active);
    } else {
      plan.bricks->classify(tf, plan.brick_active);
    }
  }
  return plan;
}

IFET_HOT IFET_DETERMINISTIC void Raycaster::render_rows(const Plan& plan, int row0, int row1,
                                     ImageRgb8& image,
                                     RenderRowCounters& counters) const {
  const VolumeF& volume = *plan.volume;
  const TransferFunction1D& tf = *plan.tf;
  const ColorMap& colors = *plan.colors;
  const Camera& camera = *plan.camera;
  const HighlightLayer* highlight = plan.highlight;
  const VolumeF* certainty = plan.certainty;
  const double dt = plan.dt;
  const double value_span = plan.value_span;
  const Vec3 light_dir = plan.light_dir;

  // Brick skipping engages when the plan carries classified metadata; a
  // plan built with empty_space_skipping = false marches every sample.
  const bool skipping = plan.bricks != nullptr && !plan.brick_active.empty();
  RayPacket packet;  // caller-owned SoA scratch: fixed-size, stack-local

  std::size_t local_samples = 0;
  std::size_t local_early = 0;
  std::size_t local_skipped = 0;
  for (int y = row0; y < row1; ++y) {
    for (int x = 0; x < settings_.width; ++x) {
      Ray ray = camera.pixel_ray(x, y, settings_.width, settings_.height);
      double t0, t1;
      Rgb accum = {0, 0, 0};
      double alpha = 0.0;
      if (settings_.mode == CompositingMode::kMaximumIntensity) {
        // MIP: the brightest sample the TF makes visible wins the
        // pixel; no ordering-dependent accumulation. A skipped sample
        // would have failed the tf.opacity(value) <= 0 cull, so clipping
        // inactive bricks never changes the winner.
        double best_value = 0.0;
        bool any = false;
        if (intersect_box(ray, plan.box_lo, plan.box_hi, t0, t1)) {
          const long n = march_last_index(t0, t1, dt);
          auto mip_sample = [&](double t) {
            Vec3 vox = plan.to_voxel(ray.origin + ray.direction * t);
            double value = volume.sample(vox);
            ++local_samples;
            if (tf.opacity(value) <= 0.0) return;
            if (!any || value > best_value) {
              best_value = value;
              any = true;
            }
          };
          if (!skipping) {
            for (long i = 0; i <= n; ++i) {
              mip_sample(t0 + static_cast<double>(i) * dt);
            }
          } else {
            const BrickWalk walk(plan, ray);
            long i = 0;
            while (i <= n) {
              const double t = t0 + static_cast<double>(i) * dt;
              int bx, by, bz;
              if (!walk.is_active(t, &bx, &by, &bz)) {
                const long j =
                    std::min(walk.jump_index(t0, dt, i, t, bx, by, bz), n + 1);
                local_skipped += static_cast<std::size_t>(j - i);
                i = j;
                continue;
              }
              mip_sample(t);
              ++i;
            }
          }
        }
        if (any) {
          double norm =
              value_span > 0.0
                  ? clamp((best_value - tf.value_lo()) / value_span, 0.0, 1.0)
                  : 0.0;
          Rgb c = colors.at(norm);
          image.set(x, y, to_byte(c.r), to_byte(c.g), to_byte(c.b));
        } else {
          image.set(x, y, to_byte(settings_.background.r),
                    to_byte(settings_.background.g),
                    to_byte(settings_.background.b));
        }
        continue;
      }
      if (intersect_box(ray, plan.box_lo, plan.box_hi, t0, t1)) {
        const long n = march_last_index(t0, t1, dt);
        if (skipping) {
          // Brick path: clip inactive bricks analytically, composite the
          // surviving runs through the SoA packet kernel. Bitwise
          // identical to the scalar march below (see ray_packet.hpp).
          const BrickWalk walk(plan, ray);
          long i = 0;
          bool terminated = false;
          while (i <= n && !terminated) {
            const double t = t0 + static_cast<double>(i) * dt;
            int bx, by, bz;
            if (!walk.is_active(t, &bx, &by, &bz)) {
              const long j =
                  std::min(walk.jump_index(t0, dt, i, t, bx, by, bz), n + 1);
              local_skipped += static_cast<std::size_t>(j - i);
              i = j;
              continue;
            }
            // Extend the run while samples stay in active bricks.
            int count = 1;
            while (count < RayPacket::kLanes && i + count <= n &&
                   walk.is_active(t0 + static_cast<double>(i + count) * dt,
                                  &bx, &by, &bz)) {
              ++count;
            }
            local_samples += static_cast<std::size_t>(
                composite_packet(plan, settings_, ray, t0, i, count, packet,
                                 alpha, accum, terminated));
            i += count;
          }
          if (terminated) ++local_early;
          accum.r += (1.0 - alpha) * settings_.background.r;
          accum.g += (1.0 - alpha) * settings_.background.g;
          accum.b += (1.0 - alpha) * settings_.background.b;
          image.set(x, y, to_byte(accum.r), to_byte(accum.g),
                    to_byte(accum.b));
          continue;
        }
        for (long i = 0; i <= n; ++i) {
          const double t = t0 + static_cast<double>(i) * dt;
          Vec3 world = ray.origin + ray.direction * t;
          Vec3 vox = plan.to_voxel(world);
          double value = volume.sample(vox);
          ++local_samples;

          double a;
          Rgb color;
          bool highlighted = false;
          if (highlight != nullptr) {
            // Nearest-voxel lookup in the region-growing texture.
            int hi_i = static_cast<int>(std::lround(vox.x));
            int hi_j = static_cast<int>(std::lround(vox.y));
            int hi_k = static_cast<int>(std::lround(vox.z));
            highlighted = highlight->mask->clamped(hi_i, hi_j, hi_k) != 0;
          }
          if (highlighted) {
            a = highlight->tf->opacity(value);
            color = highlight->color;
          } else {
            a = tf.opacity(value);
            if (certainty != nullptr) {
              // Pre-classified pass: the network's certainty gates
              // the opacity, color stays tied to the data value.
              a *= certainty->sample(vox);
            }
            double norm =
                value_span > 0.0
                    ? clamp((value - tf.value_lo()) / value_span, 0.0, 1.0)
                    : 0.0;
            color = colors.at(norm);
          }
          if (a <= 0.0) continue;
          if (settings_.opacity_correction) {
            a = 1.0 - std::pow(1.0 - a, settings_.step_voxels);
          }

          if (settings_.shading) {
            int gi = static_cast<int>(std::lround(vox.x));
            int gj = static_cast<int>(std::lround(vox.y));
            int gk = static_cast<int>(std::lround(vox.z));
            Vec3 g = gradient_at(volume, gi, gj, gk);
            double gn = g.norm();
            double shade = settings_.ambient;
            if (gn > 1e-9) {
              Vec3 normal = g / gn;
              double ndotl = std::fabs(normal.dot(light_dir));
              shade += settings_.diffuse * ndotl;
              // Headlight specular (view == light direction).
              double spec = std::pow(ndotl, settings_.specular_power);
              shade += settings_.specular * spec;
            } else {
              shade += settings_.diffuse * 0.5;
            }
            color.r *= shade;
            color.g *= shade;
            color.b *= shade;
          }

          const double w = (1.0 - alpha) * a;
          accum.r += w * color.r;
          accum.g += w * color.g;
          accum.b += w * color.b;
          alpha += w;
          if (alpha >= settings_.early_termination_alpha) {
            ++local_early;
            break;
          }
        }
      }
      accum.r += (1.0 - alpha) * settings_.background.r;
      accum.g += (1.0 - alpha) * settings_.background.g;
      accum.b += (1.0 - alpha) * settings_.background.b;
      image.set(x, y, to_byte(accum.r), to_byte(accum.g), to_byte(accum.b));
    }
  }
  counters.samples += local_samples;
  counters.terminated_early += local_early;
  counters.samples_skipped += local_skipped;
}

ImageRgb8 Raycaster::render_impl(const VolumeF& volume,
                                 const TransferFunction1D& tf,
                                 const ColorMap& colors, const Camera& camera,
                                 const HighlightLayer* highlight,
                                 const VolumeF* certainty, RenderStats* stats,
                                 std::shared_ptr<const BrickIndex> bricks)
    const {
  Stopwatch watch;
  const Plan plan = prepare_plan(volume, tf, colors, camera, highlight,
                                 certainty, std::move(bricks));
  ImageRgb8 image(settings_.width, settings_.height);

  std::atomic<std::size_t> total_samples{0};
  std::atomic<std::size_t> early{0};
  std::atomic<std::size_t> skipped{0};

  parallel_for_ranges(
      0, static_cast<std::size_t>(settings_.height),
      [&](std::size_t row0, std::size_t row1) {
        RenderRowCounters counters;
        render_rows(plan, static_cast<int>(row0), static_cast<int>(row1),
                    image, counters);
        total_samples += counters.samples;
        early += counters.terminated_early;
        skipped += counters.samples_skipped;
      });

  if (stats != nullptr) {
    stats->rays = static_cast<std::size_t>(settings_.width) *
                  static_cast<std::size_t>(settings_.height);
    stats->samples = total_samples.load();
    stats->terminated_early = early.load();
    stats->seconds = watch.seconds();
    stats->samples_skipped = skipped.load();
    stats->bricks_total = plan.bricks ? plan.bricks->num_bricks() : 0;
    stats->bricks_active = 0;
    for (std::uint8_t flag : plan.brick_active) {
      stats->bricks_active += flag != 0 ? 1 : 0;
    }
  }
  return image;
}

ImageRgb8 render_slice(const VolumeF& volume, int axis, int slice,
                       const TransferFunction1D& tf, const ColorMap& colors) {
  IFET_REQUIRE(axis >= 0 && axis <= 2, "render_slice: axis must be 0..2");
  const Dims d = volume.dims();
  int width = 0, height = 0, extent = 0;
  switch (axis) {
    case 0: width = d.y; height = d.z; extent = d.x; break;
    case 1: width = d.x; height = d.z; extent = d.y; break;
    default: width = d.x; height = d.y; extent = d.z; break;
  }
  // Validate once up front: every (i,j,k) below is then in bounds by
  // construction, so the pixel loop uses the unchecked accessor instead of
  // re-proving the same containment width*height times.
  IFET_REQUIRE(slice >= 0 && slice < extent,
               "render_slice: slice out of range");
  ImageRgb8 image(width, height);
  const double span = tf.value_hi() - tf.value_lo();
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      int i = 0, j = 0, k = 0;
      switch (axis) {
        case 0: i = slice; j = col; k = row; break;
        case 1: i = col; j = slice; k = row; break;
        default: i = col; j = row; k = slice; break;
      }
      double value = volume[volume.linear_index(i, j, k)];
      double a = tf.opacity(value);
      double norm = span > 0.0
                        ? clamp((value - tf.value_lo()) / span, 0.0, 1.0)
                        : 0.0;
      Rgb c = colors.at(norm);
      image.set(col, row, to_byte(c.r * a), to_byte(c.g * a),
                to_byte(c.b * a));
    }
  }
  return image;
}

}  // namespace ifet
