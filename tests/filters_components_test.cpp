#include <gtest/gtest.h>

#include "math/stats.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/components.hpp"
#include "volume/filters.hpp"

namespace ifet {
namespace {

using testing::box_mask;
using testing::box_volume;
using testing::random_volume;

double volume_mean(const VolumeF& v) {
  double s = 0.0;
  for (float x : v.data()) s += x;
  return s / static_cast<double>(v.size());
}

double volume_variance(const VolumeF& v) {
  double m = volume_mean(v);
  double s = 0.0;
  for (float x : v.data()) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

TEST(GaussianBlur, PreservesMeanApproximately) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 44, 0.0, 1.0);
  VolumeF b = gaussian_blur(v, 1.2);
  EXPECT_NEAR(volume_mean(b), volume_mean(v), 0.01);
}

TEST(GaussianBlur, ReducesVariance) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 45, 0.0, 1.0);
  VolumeF b = gaussian_blur(v, 1.5);
  EXPECT_LT(volume_variance(b), 0.4 * volume_variance(v));
}

TEST(GaussianBlur, ConstantVolumeUnchanged) {
  VolumeF v(Dims{8, 8, 8}, 3.0f);
  VolumeF b = gaussian_blur(v, 2.0);
  for (float x : b.data()) EXPECT_NEAR(x, 3.0f, 1e-5);
}

TEST(GaussianBlur, InvalidSigmaThrows) {
  VolumeF v(Dims{8, 8, 8});
  EXPECT_THROW(gaussian_blur(v, 0.0), Error);
  EXPECT_THROW(gaussian_blur(v, -1.0), Error);
}

TEST(RepeatedSmooth, ZeroIterationsIsIdentity) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 46);
  VolumeF out = repeated_smooth(v, 1.0, 0);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(out[i], v[i]);
}

TEST(RepeatedSmooth, MoreIterationsSmoothMore) {
  VolumeF v = random_volume(Dims{12, 12, 12}, 47);
  double v1 = volume_variance(repeated_smooth(v, 1.0, 1));
  double v3 = volume_variance(repeated_smooth(v, 1.0, 3));
  EXPECT_LT(v3, v1);
}

// Fig 7's failure mode of the smoothing baseline, as a property: smoothing
// kills small features AND the fine detail on large features together.
TEST(RepeatedSmooth, ErasesSmallFeatures) {
  Dims d{24, 24, 24};
  VolumeF v(d, 0.0f);
  v.at(12, 12, 12) = 1.0f;  // one-voxel feature
  VolumeF b = repeated_smooth(v, 1.5, 2);
  EXPECT_LT(b.at(12, 12, 12), 0.1f);
}

TEST(BoxBlur3, AveragesNeighbors) {
  VolumeF v(Dims{5, 5, 5}, 0.0f);
  v.at(2, 2, 2) = 27.0f;
  VolumeF b = box_blur3(v);
  // After a separable 3-wide box, the center keeps 1/27 of the mass.
  EXPECT_NEAR(b.at(2, 2, 2), 1.0f, 1e-4);
  EXPECT_NEAR(b.at(1, 1, 1), 1.0f, 1e-4);
}

TEST(Components, SingleBoxIsOneComponent) {
  Mask m = box_mask(Dims{10, 10, 10}, {2, 2, 2}, {4, 4, 4});
  Labeling lab = label_components(m);
  ASSERT_EQ(lab.components.size(), 1u);
  EXPECT_EQ(lab.components[0].voxel_count, 27u);
  EXPECT_NEAR(lab.components[0].centroid.x, 3.0, 1e-12);
  EXPECT_EQ(lab.components[0].bbox_min.x, 2);
  EXPECT_EQ(lab.components[0].bbox_max.z, 4);
}

TEST(Components, DisjointBoxesSeparate) {
  Dims d{16, 16, 16};
  Mask m = mask_or(box_mask(d, {0, 0, 0}, {2, 2, 2}),
                   box_mask(d, {8, 8, 8}, {12, 12, 12}));
  Labeling lab = label_components(m);
  ASSERT_EQ(lab.components.size(), 2u);
  // Sorted largest first.
  EXPECT_EQ(lab.components[0].voxel_count, 125u);
  EXPECT_EQ(lab.components[1].voxel_count, 27u);
}

TEST(Components, DiagonalTouchIsNotConnected) {
  // 6-connectivity: voxels sharing only a corner are separate components.
  Mask m(Dims{4, 4, 4});
  m.at(0, 0, 0) = 1;
  m.at(1, 1, 1) = 1;
  Labeling lab = label_components(m);
  EXPECT_EQ(lab.components.size(), 2u);
}

TEST(Components, FaceTouchIsConnected) {
  Mask m(Dims{4, 4, 4});
  m.at(0, 0, 0) = 1;
  m.at(1, 0, 0) = 1;
  Labeling lab = label_components(m);
  EXPECT_EQ(lab.components.size(), 1u);
}

TEST(Components, EmptyMaskHasNoComponents) {
  Mask m(Dims{4, 4, 4});
  Labeling lab = label_components(m);
  EXPECT_TRUE(lab.components.empty());
}

TEST(Components, ValueSumIntegratesField) {
  Dims d{8, 8, 8};
  Mask m = box_mask(d, {0, 0, 0}, {1, 1, 1});
  VolumeF v(d, 0.5f);
  Labeling lab = label_components(m, &v);
  ASSERT_EQ(lab.components.size(), 1u);
  EXPECT_NEAR(lab.components[0].value_sum, 8 * 0.5, 1e-9);
}

TEST(Components, ComponentMaskSelectsOnlyThatLabel) {
  Dims d{16, 16, 16};
  Mask m = mask_or(box_mask(d, {0, 0, 0}, {2, 2, 2}),
                   box_mask(d, {8, 8, 8}, {10, 10, 10}));
  Labeling lab = label_components(m);
  Mask one = lab.component_mask(lab.components[0].label);
  EXPECT_EQ(mask_count(one), lab.components[0].voxel_count);
}

TEST(Components, InfoThrowsOnUnknownLabel) {
  Mask m(Dims{4, 4, 4});
  m.at(0, 0, 0) = 1;
  Labeling lab = label_components(m);
  EXPECT_THROW(lab.info(999), Error);
}

TEST(RemoveSmallComponents, FiltersBySize) {
  Dims d{20, 20, 20};
  Mask m = mask_or(box_mask(d, {0, 0, 0}, {4, 4, 4}),     // 125 voxels
                   box_mask(d, {10, 10, 10}, {11, 11, 11}));  // 8 voxels
  Mask kept = remove_small_components(m, 50);
  EXPECT_EQ(mask_count(kept), 125u);
  Mask all = remove_small_components(m, 1);
  EXPECT_EQ(mask_count(all), 133u);
  Mask none = remove_small_components(m, 1000);
  EXPECT_EQ(mask_count(none), 0u);
}

// Component labeling invariants across random masks of varying density.
class ComponentsPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ComponentsPropertyTest, LabelingPartitionsTheMask) {
  const double density = GetParam();
  Dims d{12, 12, 12};
  Rng rng(314);
  Mask m(d);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.uniform() < density ? 1 : 0;
  }
  Labeling lab = label_components(m);
  // Every set voxel is labeled, every unset voxel is 0.
  std::size_t labeled = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i]) {
      EXPECT_GT(lab.labels[i], 0);
      ++labeled;
    } else {
      EXPECT_EQ(lab.labels[i], 0);
    }
  }
  // Component sizes sum to the mask size.
  std::size_t total = 0;
  for (const auto& c : lab.components) total += c.voxel_count;
  EXPECT_EQ(total, labeled);
  // Sorted by size, descending.
  for (std::size_t c = 1; c < lab.components.size(); ++c) {
    EXPECT_GE(lab.components[c - 1].voxel_count,
              lab.components[c].voxel_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ComponentsPropertyTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace ifet
