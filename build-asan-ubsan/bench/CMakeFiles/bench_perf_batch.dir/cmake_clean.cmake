file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_batch.dir/bench_perf_batch.cpp.o"
  "CMakeFiles/bench_perf_batch.dir/bench_perf_batch.cpp.o.d"
  "bench_perf_batch"
  "bench_perf_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
