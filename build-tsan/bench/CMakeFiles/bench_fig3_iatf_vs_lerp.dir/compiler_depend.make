# Empty compiler generated dependencies file for bench_fig3_iatf_vs_lerp.
# This may be replaced when dependencies are built.
