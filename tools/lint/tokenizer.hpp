// Shared tokenizer for the ifet_lint passes (docs/STATIC_ANALYSIS.md).
//
// Every pass consumes the same SourceFile record: the raw lines (where
// suppression markers live — they are comments) plus `code`, a parallel
// vector with comments, string literals, and char literals blanked to
// spaces. Blanking instead of deleting keeps line numbers and column
// positions identical between the two views, so a pass can match against
// `code` and report (or look up markers) against `raw` at the same index.
#pragma once

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ifet_lint {

namespace fs = std::filesystem;

struct Finding {
  Finding() = default;
  Finding(std::string path_, std::size_t line_, std::string rule_,
          std::string message_, std::string symbol_ = {})
      : path(std::move(path_)),
        line(line_),
        rule(std::move(rule_)),
        message(std::move(message_)),
        symbol(std::move(symbol_)) {}

  std::string path;
  std::size_t line = 0;  // 1-based; 0 = whole file
  std::string rule;
  std::string message;
  std::string symbol;  // enclosing function, when a pass knows it
                       // (callgraph passes); baseline entries key on it
  std::string chain;   // root -> ... -> fn call chain (callgraph passes)
  bool baseline_suppressed = false;  // listed in JSON, excluded from the
                                     // exit code and the text report
};

struct SourceFile {
  fs::path path;
  std::vector<std::string> raw;   // verbatim, for markers and messages
  std::vector<std::string> code;  // comments/strings blanked to spaces
  bool ok = false;                // false: unreadable
};

inline bool is_header(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h";
}

inline bool is_source_file(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

/// True when `raw[i]` or the line above carries an allow marker for
/// `rule`, e.g. `// ifet-lint: allow(catch-all)`.
inline bool suppressed(const std::vector<std::string>& raw, std::size_t i,
                       const std::string& rule) {
  const std::string marker = "ifet-lint: allow(" + rule + ")";
  if (raw[i].find(marker) != std::string::npos) return true;
  return i > 0 && raw[i - 1].find(marker) != std::string::npos;
}

inline bool file_suppressed(const std::vector<std::string>& raw,
                            const std::string& rule) {
  const std::string marker = "ifet-lint: allow-file(" + rule + ")";
  for (const auto& l : raw) {
    if (l.find(marker) != std::string::npos) return true;
  }
  return false;
}

/// True when the identifier characters immediately before position `c`
/// form a string/char encoding prefix (u8, u, U, L) at a token boundary.
/// Used for `u8"..."`, `L'x'`, and prefixed raw strings (`u8R"(...)"`,
/// where `c` is the position of the R).
inline bool encoding_prefix_before(const std::string& line, std::size_t c) {
  std::size_t b = c;
  while (b > 0 && (std::isalnum(static_cast<unsigned char>(line[b - 1])) ||
                   line[b - 1] == '_')) {
    --b;
  }
  const std::string prefix = line.substr(b, c - b);
  return prefix == "u8" || prefix == "u" || prefix == "U" || prefix == "L";
}

/// Blanks comments and literals across the whole file. A small state
/// machine rather than regexes because block comments, raw strings, and
/// escapes all span lines.
inline std::vector<std::string> strip_to_code(
    const std::vector<std::string>& raw) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  std::vector<std::string> out;
  out.reserve(raw.size());
  State state = State::kCode;
  std::string raw_terminator;  // for kRawString: )delim"

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    for (std::size_t c = 0; c < line.size(); ++c) {
      const char ch = line[c];
      const char next = c + 1 < line.size() ? line[c + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (ch == '/' && next == '/') {
            state = State::kLineComment;
          } else if (ch == '/' && next == '*') {
            state = State::kBlockComment;
            ++c;
          } else if (ch == 'R' && next == '"' &&
                     (c == 0 || (!std::isalnum(static_cast<unsigned char>(
                                     line[c - 1])) &&
                                 line[c - 1] != '_') ||
                      encoding_prefix_before(line, c))) {
            // R"delim( ... )delim" — scan the delimiter.
            std::size_t d = c + 2;
            std::string delim;
            while (d < line.size() && line[d] != '(' && delim.size() < 16) {
              delim.push_back(line[d++]);
            }
            if (d < line.size() && line[d] == '(') {
              state = State::kRawString;
              raw_terminator = ")" + delim + "\"";
              c = d;  // resume after the opening paren
            } else {
              code[c] = ch;  // not actually a raw string
            }
          } else if (ch == '"') {
            state = State::kString;
          } else if (ch == '\'') {
            // A quote between alphanumerics is a digit separator
            // (1'000'000), not a char literal — unless the identifier
            // before it is an encoding prefix (L'x'). Mis-lexing a
            // separator as a char open swallows the rest of the literal
            // and corrupts call-graph edges on that line.
            const bool separator =
                c > 0 &&
                std::isalnum(static_cast<unsigned char>(line[c - 1])) &&
                std::isalnum(static_cast<unsigned char>(next)) &&
                !encoding_prefix_before(line, c);
            if (separator) {
              code[c] = ch;
            } else {
              state = State::kChar;
            }
          } else {
            code[c] = ch;
          }
          break;
        case State::kLineComment:
          break;  // rest of line is comment
        case State::kBlockComment:
          if (ch == '*' && next == '/') {
            state = State::kCode;
            ++c;
          }
          break;
        case State::kString:
          if (ch == '\\') {
            ++c;
          } else if (ch == '"') {
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (ch == '\\') {
            ++c;
          } else if (ch == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (line.compare(c, raw_terminator.size(), raw_terminator) == 0) {
            c += raw_terminator.size() - 1;
            state = State::kCode;
          }
          break;
      }
    }
    // Unterminated ordinary string/char at EOL: literals do not span lines
    // (the backslash-newline case is rare enough to ignore in a linter).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    // Blank [[attribute]] sequences: `[[deprecated("x")]]` would
    // otherwise look like a call named `deprecated` to the token-level
    // passes. Adjacent `[[` never occurs in well-formed subscripts, so
    // this cannot eat real code.
    for (std::size_t a = code.find("[["); a != std::string::npos;
         a = code.find("[[", a)) {
      const std::size_t e = code.find("]]", a + 2);
      if (e == std::string::npos) break;
      for (std::size_t k = a; k < e + 2; ++k) code[k] = ' ';
      a = e + 2;
    }
    out.push_back(std::move(code));
  }
  return out;
}

inline SourceFile load_file(const fs::path& path) {
  SourceFile f;
  f.path = path;
  std::ifstream in(path);
  if (!in) return f;
  for (std::string line; std::getline(in, line);) f.raw.push_back(line);
  f.code = strip_to_code(f.raw);
  f.ok = true;
  return f;
}

}  // namespace ifet_lint
