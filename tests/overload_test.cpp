// Overload-resilience layer (docs/ROBUSTNESS.md, "Overload and
// deadlines"): deadline tokens raise typed DeadlineExceeded instead of
// hanging strands and never quarantine or poison a step; the strand
// queue bound refuses work with typed kOverloaded results (reject-new
// and shed-oldest, mutations never dropped once accepted); the pressure
// monitor clamps quotas center-out and restores them hysteretically on a
// signal that cannot argue itself back below the exit threshold; the
// stuck-strand watchdog observes commands exceeding N x their budget
// without holding any lock over the samples.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "server/admission.hpp"
#include "server/pressure.hpp"
#include "server/session_manager.hpp"
#include "stream/cache_manager.hpp"
#include "stream/derived_cache.hpp"
#include "stream/fault_injection.hpp"
#include "stream/prefetcher.hpp"
#include "stream/volume_store.hpp"
#include "util/deadline.hpp"
#include "util/io_error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{8, 8, 8};
constexpr std::size_t kStepBytes =
    static_cast<std::size_t>(8 * 8 * 8) * sizeof(float);

std::shared_ptr<CallbackSource> ramp_source(int steps) {
  return std::make_shared<CallbackSource>(
      kDims, steps, std::pair<double, double>{0.0, 1.0}, [](int step) {
        VolumeF v(kDims);
        for (int k = 0; k < kDims.z; ++k) {
          for (int j = 0; j < kDims.y; ++j) {
            for (int i = 0; i < kDims.x; ++i) {
              v.at(i, j, k) = static_cast<float>(
                  (i + j + k + step) % 16) / 16.0f;
            }
          }
        }
        return v;
      });
}

/// The ramp source behind a uniformly slow device (`ms` per load).
std::shared_ptr<FaultInjectingSource> slow_source(int steps, int ms) {
  return std::make_shared<FaultInjectingSource>(
      ramp_source(steps),
      std::vector<FaultSpec>{
          parse_fault_spec("slow@all:" + std::to_string(ms))});
}

// --- Deadline token -------------------------------------------------------

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_NO_THROW(d.check("test"));
}

TEST(Deadline, ExpiredBudgetRaisesTyped) {
  const Deadline d = Deadline::after_ms(0.0);
  EXPECT_TRUE(d.limited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);
  EXPECT_THROW(d.check("test wait"), DeadlineExceeded);
  // DeadlineExceeded is part of the IoError taxonomy (pre-catch ordering
  // in the load path relies on the inheritance).
  EXPECT_THROW(d.check("test wait"), IoError);
}

TEST(Deadline, FutureBudgetNotExpired) {
  const Deadline d = Deadline::after_ms(60000.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  EXPECT_LE(d.remaining_ms(), 60000.0);
  EXPECT_NO_THROW(d.check("test"));
}

TEST(Deadline, CancelTokenExpiresEveryCopy) {
  CancelSource source;
  const Deadline d = Deadline::unlimited().with_cancel(source.token());
  const Deadline copy = d;
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  source.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(copy.expired());
  EXPECT_EQ(copy.remaining_ms(), 0.0);
  EXPECT_THROW(copy.check("cancelled wait"), DeadlineExceeded);
}

TEST(Deadline, ScopeNestsAndRestores) {
  EXPECT_FALSE(DeadlineScope::current().limited());
  {
    DeadlineScope outer(Deadline::after_ms(60000.0));
    EXPECT_TRUE(DeadlineScope::current().limited());
    EXPECT_FALSE(DeadlineScope::current().expired());
    {
      DeadlineScope inner(Deadline::after_ms(0.0));
      EXPECT_TRUE(DeadlineScope::current().expired());
    }
    EXPECT_FALSE(DeadlineScope::current().expired());
  }
  EXPECT_FALSE(DeadlineScope::current().limited());
}

// --- Prefetcher / store waits under deadline ------------------------------

// Regression: a timed-out wait on an in-flight load must raise the typed
// DeadlineExceeded, leave the load running (workers carry no deadline),
// and record NO failure — the bytes land in cache for the retry.
TEST(Overload, PrefetcherWaitDeadlineDoesNotPoison) {
  ThreadPool pool(2);
  CacheManager cache;
  const auto source = ramp_source(4);
  Prefetcher prefetcher(pool, cache, [&source](int step) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return source->generate(step);
  });
  prefetcher.schedule(0);
  ASSERT_TRUE(prefetcher.in_flight(0));
  EXPECT_THROW(prefetcher.wait(0, Deadline::after_ms(1.0)),
               DeadlineExceeded);
  // The load was NOT cancelled or failed by the waiter's timeout.
  EXPECT_TRUE(prefetcher.wait(0));
  EXPECT_FALSE(prefetcher.in_flight(0));
  EXPECT_EQ(prefetcher.take_failure(0), nullptr);
  EXPECT_NE(cache.lookup(0), nullptr);
}

TEST(Overload, StoreFetchDeadlineTypedAndNoQuarantine) {
  VolumeStoreConfig config;
  config.async_prefetch = false;
  config.lookahead = 0;
  VolumeStore store(slow_source(4, 30), config);
  {
    DeadlineScope scope(Deadline::after_ms(0.0));
    EXPECT_THROW(store.fetch(0), DeadlineExceeded);
  }
  // A deadline is the CALLER giving up, not the data failing: nothing is
  // quarantined, nothing counts as a load failure, and a fetch with a
  // fresh budget succeeds.
  EXPECT_EQ(store.stats().quarantined_steps, 0u);
  EXPECT_EQ(store.stats().load_failures, 0u);
  EXPECT_NE(store.fetch(0), nullptr);
}

TEST(Overload, RetryBackoffRespectsDeadline) {
  VolumeStoreConfig config;
  config.async_prefetch = false;
  config.lookahead = 0;
  config.max_retries = 5;
  config.retry_backoff_ms = 500.0;  // Full backoff would sleep seconds.
  VolumeStore store(
      std::make_shared<FaultInjectingSource>(
          ramp_source(4),
          std::vector<FaultSpec>{parse_fault_spec("transient@0:2")}),
      config);
  const auto t0 = std::chrono::steady_clock::now();
  {
    DeadlineScope scope(Deadline::after_ms(20.0));
    EXPECT_THROW(store.fetch(0), DeadlineExceeded);
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // The backoff sleep was capped by the remaining budget — nowhere near
  // the configured 500 ms per retry.
  EXPECT_LT(elapsed_ms, 400.0);
  // Not quarantined by the timeout; the transient schedule heals and an
  // unlimited fetch succeeds.
  EXPECT_EQ(store.stats().quarantined_steps, 0u);
  EXPECT_NE(store.fetch(0), nullptr);
}

// --- Backpressure decision (pure) -----------------------------------------

TEST(Overload, DecideBackpressureIsAPureTable) {
  // Unbounded queue accepts everything.
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kRejectNew, 100, 0, true),
            ShedAction::kAccept);
  // Below the bound accepts regardless of policy.
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kRejectNew, 3, 4, true),
            ShedAction::kAccept);
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kShedOldest, 3, 4, false),
            ShedAction::kAccept);
  // At the bound: reject-new refuses; shed-oldest shed only when a
  // sheddable victim is queued, else it degrades to reject.
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kRejectNew, 4, 4, true),
            ShedAction::kRejectNew);
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kShedOldest, 4, 4, true),
            ShedAction::kShedOldest);
  EXPECT_EQ(decide_backpressure(BackpressurePolicy::kShedOldest, 4, 4, false),
            ShedAction::kRejectNew);
}

TEST(Overload, SheddableClassification) {
  // Read-only queries are sheddable; mutations and hints are not.
  EXPECT_TRUE(command_is_sheddable(CommandKind::kQueryTf));
  EXPECT_TRUE(command_is_sheddable(CommandKind::kHistogram));
  EXPECT_TRUE(command_is_sheddable(CommandKind::kRender));
  EXPECT_TRUE(command_is_sheddable(CommandKind::kClassify));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kPaint));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kTrainTf));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kTrainClassifier));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kTrack));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kHintWindow));
  EXPECT_FALSE(command_is_sheddable(CommandKind::kSetKeyFrame));
}

// --- Bounded strand queues ------------------------------------------------

/// Submit a slow command and wait until the strand picked it up (queue
/// depth back to 0 while it runs), so follow-up submits deterministically
/// land in the queue behind it.
void wait_until_running(SessionManager& manager, int id) {
  for (int i = 0; i < 2000; ++i) {
    if (manager.session_queue(id).depth == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "strand never picked up the blocking command";
}

TEST(Overload, RejectNewRefusesTyped) {
  SessionManagerConfig config;
  config.command_threads = 1;
  config.max_queue_depth = 2;
  config.backpressure = BackpressurePolicy::kRejectNew;
  SessionManager manager(slow_source(8, 100), config);
  const int id = manager.create_session();

  std::mutex mutex;
  std::vector<std::pair<int, ServerResult>> done;
  auto record = [&mutex, &done](int tag) {
    return [&mutex, &done, tag](const ServerResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      done.emplace_back(tag, r);
    };
  };

  Command blocker;
  blocker.kind = CommandKind::kHistogram;
  blocker.step = 0;
  manager.submit(id, blocker, record(0));
  wait_until_running(manager, id);

  Command query;
  query.kind = CommandKind::kQueryTf;
  query.step = 1;
  manager.submit(id, query, record(1));
  query.step = 2;
  manager.submit(id, query, record(2));
  // The queue is at its bound of 2: this submit is refused SYNCHRONOUSLY
  // on the calling thread with a typed kOverloaded + retry-after hint.
  query.step = 3;
  manager.submit(id, query, record(3));
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_FALSE(done.empty());
    EXPECT_EQ(done.back().first, 3);
    EXPECT_EQ(done.back().second.status, ServerStatus::kOverloaded);
    EXPECT_FALSE(done.back().second.ok);
    EXPECT_GT(done.back().second.retry_after_ms, 0.0);
  }
  manager.drain(id);

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(done.size(), 4u);
  for (const auto& [tag, r] : done) {
    if (tag == 3) continue;
    EXPECT_EQ(r.status, ServerStatus::kOk) << "command " << tag;
  }
  EXPECT_EQ(manager.session_stats(id).commands_rejected, 1u);
  EXPECT_EQ(manager.tier().stats().commands_rejected, 1u);
  EXPECT_EQ(manager.session_queue(id).peak_depth, 2u);
}

TEST(Overload, ShedOldestDropsOldestSheddable) {
  SessionManagerConfig config;
  config.command_threads = 1;
  config.max_queue_depth = 2;
  config.backpressure = BackpressurePolicy::kShedOldest;
  SessionManager manager(slow_source(8, 100), config);
  const int id = manager.create_session();

  std::mutex mutex;
  std::vector<std::pair<int, ServerResult>> done;
  auto record = [&mutex, &done](int tag) {
    return [&mutex, &done, tag](const ServerResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      done.emplace_back(tag, r);
    };
  };

  Command blocker;
  blocker.kind = CommandKind::kHistogram;
  blocker.step = 0;
  manager.submit(id, blocker, record(0));
  wait_until_running(manager, id);

  Command query;
  query.kind = CommandKind::kQueryTf;
  query.step = 1;
  manager.submit(id, query, record(1));  // Oldest sheddable — the victim.
  query.step = 2;
  manager.submit(id, query, record(2));
  query.step = 3;
  manager.submit(id, query, record(3));  // Full queue: sheds tag 1.
  manager.drain(id);

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(done.size(), 4u);
  for (const auto& [tag, r] : done) {
    if (tag == 1) {
      EXPECT_EQ(r.status, ServerStatus::kOverloaded);
      EXPECT_GT(r.retry_after_ms, 0.0);
    } else {
      EXPECT_EQ(r.status, ServerStatus::kOk) << "command " << tag;
    }
  }
  EXPECT_EQ(manager.session_stats(id).commands_shed, 1u);
  EXPECT_EQ(manager.tier().stats().commands_shed, 1u);
}

TEST(Overload, ShedOldestNeverDropsMutations) {
  SessionManagerConfig config;
  config.command_threads = 1;
  config.max_queue_depth = 2;
  config.backpressure = BackpressurePolicy::kShedOldest;
  SessionManager manager(slow_source(8, 100), config);
  const int id = manager.create_session();

  std::mutex mutex;
  std::vector<std::pair<int, ServerResult>> done;
  auto record = [&mutex, &done](int tag) {
    return [&mutex, &done, tag](const ServerResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      done.emplace_back(tag, r);
    };
  };

  Command blocker;
  blocker.kind = CommandKind::kHistogram;
  blocker.step = 0;
  manager.submit(id, blocker, record(0));
  wait_until_running(manager, id);

  // Fill the queue with NON-sheddable commands: shed-oldest has no legal
  // victim and must degrade to reject-new for the incoming command.
  Command hint;
  hint.kind = CommandKind::kHintWindow;
  hint.window_lo = 0;
  hint.window_hi = 1;
  manager.submit(id, hint, record(1));
  manager.submit(id, hint, record(2));
  manager.submit(id, hint, record(3));
  manager.drain(id);

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(done.size(), 4u);
  for (const auto& [tag, r] : done) {
    if (tag == 3) {
      EXPECT_EQ(r.status, ServerStatus::kOverloaded);
    } else {
      EXPECT_EQ(r.status, ServerStatus::kOk) << "command " << tag;
    }
  }
  EXPECT_EQ(manager.session_stats(id).commands_shed, 0u);
  EXPECT_EQ(manager.session_stats(id).commands_rejected, 1u);
}

// --- Typed deadline results through the server ----------------------------

TEST(Overload, CommandDeadlineTypedResultAndRecovery) {
  SessionManagerConfig config;
  config.command_threads = 1;
  SessionManager manager(slow_source(4, 30), config);
  const int id = manager.create_session();

  Command query;
  query.kind = CommandKind::kHistogram;
  query.step = 0;
  query.deadline_ms = 0.01;  // Impossible: expires while queued.
  std::mutex mutex;
  ServerResult result;
  manager.submit(id, query, [&mutex, &result](const ServerResult& r) {
    std::lock_guard<std::mutex> lock(mutex);
    result = r;
  });
  manager.drain(id);
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(result.status, ServerStatus::kDeadlineExceeded);
    EXPECT_FALSE(result.ok);
  }
  EXPECT_EQ(manager.session_stats(id).deadline_exceeded, 1u);
  EXPECT_EQ(manager.tier().stats().deadline_exceeded, 1u);

  // The timeout poisoned nothing: the same command with no budget runs.
  query.deadline_ms = 0.0;
  const ServerResult retry = manager.execute(id, query);
  EXPECT_EQ(retry.status, ServerStatus::kOk);
}

TEST(Overload, DefaultDeadlineAppliesAndExplicitOverrides) {
  SessionManagerConfig config;
  config.command_threads = 1;
  config.default_deadline_ms = 0.01;  // Impossible default budget.
  SessionManager manager(slow_source(4, 20), config);
  const int id = manager.create_session();

  Command query;
  query.kind = CommandKind::kHistogram;
  query.step = 0;
  const ServerResult defaulted = manager.execute(id, query);
  EXPECT_EQ(defaulted.status, ServerStatus::kDeadlineExceeded);

  query.deadline_ms = 60000.0;  // Explicit budget overrides the default.
  const ServerResult generous = manager.execute(id, query);
  EXPECT_EQ(generous.status, ServerStatus::kOk);
}

// --- Admission quota clamp / restore hysteresis ---------------------------

TEST(Overload, QuotaClampReplaysCenterOutAndRestoresExactly) {
  AdmissionController adm(kStepBytes, 4 * kStepBytes, 16);
  const int c = adm.register_client();
  WindowDelta delta = adm.set_window(c, 0, 9, 5);
  // Center-out from 5 with quota 4: 5, then 4 (tie goes to the earlier
  // step), 6, then 3.
  EXPECT_EQ(delta.pin, (std::vector<int>{3, 4, 5, 6}));
  EXPECT_TRUE(delta.unpin.empty());
  EXPECT_EQ(delta.denied.size(), 6u);
  const std::uint64_t denied_before = adm.client_stats(c).denied_pins;

  // Clamp to 50%: quota 2 — the admitted set shrinks to the center-out
  // prefix, and the revocations count as pressure_unpins, NOT denied_pins
  // (a clamp is a revocation, not a hint-time refusal).
  auto deltas = adm.set_quota_scale(50);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].first, c);
  EXPECT_EQ(deltas[0].second.unpin, (std::vector<int>{3, 6}));
  EXPECT_TRUE(deltas[0].second.pin.empty());
  EXPECT_EQ(adm.quota_steps(), 2u);
  EXPECT_EQ(adm.quota_steps_base(), 4u);
  EXPECT_EQ(adm.client_stats(c).pinned_steps, 2u);
  EXPECT_EQ(adm.client_stats(c).pressure_unpins, 2u);
  EXPECT_EQ(adm.client_stats(c).denied_pins, denied_before);

  // The demand signal ignores the live clamp — clamping can never argue
  // itself back below the exit threshold (the oscillation guard).
  EXPECT_EQ(adm.demanded_pin_steps(), 4u);

  // Idempotent: repeating the scale produces no deltas.
  EXPECT_TRUE(adm.set_quota_scale(50).empty());

  // Restore: exactly the revoked steps come back (center-out replay), and
  // a fresh identical hint then has nothing to change.
  deltas = adm.set_quota_scale(100);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].second.pin, (std::vector<int>{3, 6}));
  EXPECT_TRUE(deltas[0].second.unpin.empty());
  EXPECT_EQ(adm.client_stats(c).pinned_steps, 4u);
  delta = adm.set_window(c, 0, 9, 5);
  EXPECT_TRUE(delta.pin.empty());
  EXPECT_TRUE(delta.unpin.empty());
}

TEST(Overload, QuotaClampFairAcrossClientChurn) {
  AdmissionController adm(kStepBytes, 2 * kStepBytes, 16);
  const int a = adm.register_client();
  const int b = adm.register_client();
  adm.set_window(a, 0, 3, 1);
  adm.set_window(b, 4, 7, 5);

  auto deltas = adm.set_quota_scale(50);  // Quota 2 -> 1 for everyone.
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(adm.client_stats(a).pressure_unpins, 1u);
  EXPECT_EQ(adm.client_stats(b).pressure_unpins, 1u);

  // A client that leaves while clamped must not perturb the restore of
  // the one that stays.
  adm.release_client(b);
  deltas = adm.set_quota_scale(100);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].first, a);
  EXPECT_EQ(deltas[0].second.pin.size(), 1u);
  EXPECT_EQ(adm.client_stats(a).pinned_steps, 2u);
  // New clients after the restore see the full quota immediately.
  const int c = adm.register_client();
  EXPECT_EQ(adm.set_window(c, 8, 11, 9).pin.size(), 2u);
}

// --- Pressure monitor hysteresis ------------------------------------------

struct PressureRig {
  CacheManager cache{4 * kStepBytes};
  AdmissionController adm{kStepBytes, 2 * kStepBytes, 16};
  DerivedCache derived;
  SharedStreamStats aggregate;
  static constexpr std::uint64_t kKeepParams = 111;

  void apply(const WindowDelta& delta) {
    for (const int s : delta.unpin) cache.unpin(s);
    for (const int s : delta.pin) cache.pin(s);
  }
  void apply_all(const std::vector<std::pair<int, WindowDelta>>& deltas) {
    for (const auto& [client, delta] : deltas) apply(delta);
  }
};

TEST(Overload, PressureEngagesShedsClampsAndReleases) {
  PressureRig rig;
  // Derived products under the tier hash (kept) and a client hash (shed).
  rig.derived.histogram(0, PressureRig::kKeepParams,
                        [] { return Histogram(4, 0.0, 1.0); });
  rig.derived.histogram(0, 222, [] { return Histogram(4, 0.0, 1.0); });
  rig.derived.transfer_function(1, 222, [] {
    return TransferFunction1D(0.0, 1.0);
  });
  ASSERT_EQ(rig.derived.size(), 3u);

  PressureConfig config;
  config.enabled = true;
  PressureMonitor monitor(rig.cache, rig.adm, rig.derived, rig.aggregate,
                          PressureRig::kKeepParams, 4 * kStepBytes,
                          kStepBytes, config);
  EXPECT_EQ(monitor.sample(), 0);
  monitor.poll();
  EXPECT_FALSE(monitor.engaged());

  // One client demands 2 of 4 budget steps (ratio 0.5): steady.
  const int a = rig.adm.register_client();
  rig.apply(rig.adm.set_window(a, 0, 3, 1));
  EXPECT_EQ(monitor.sample(), 0);

  // A second client doubles the demand (ratio 1.0 >= 0.85): engage.
  const int b = rig.adm.register_client();
  rig.apply(rig.adm.set_window(b, 4, 7, 5));
  EXPECT_EQ(monitor.sample(), 1);
  monitor.poll();
  EXPECT_TRUE(monitor.engaged());
  PressureReport report = monitor.report();
  EXPECT_EQ(report.enters, 1u);
  EXPECT_EQ(report.derived_shed, 2u);   // The 222 entries; 111 spared.
  EXPECT_EQ(rig.derived.size(), 1u);
  EXPECT_EQ(report.pins_clamped, 2u);   // One pin revoked per client.
  EXPECT_EQ(rig.adm.quota_scale_percent(), 50);
  EXPECT_EQ(rig.adm.quota_steps(), 1u);
  EXPECT_EQ(rig.aggregate.snapshot().pressure_transitions, 1u);

  // Demand at FULL quota is still 4 (the clamp does not relieve its own
  // signal), so the monitor stays engaged — no oscillation.
  EXPECT_EQ(monitor.sample(), 0);

  // Client B leaves: demand 2 of 4 (ratio 0.5 <= 0.65): release, restore.
  for (const int s : rig.adm.release_client(b)) rig.cache.unpin(s);
  EXPECT_EQ(monitor.sample(), -1);
  monitor.poll();
  EXPECT_FALSE(monitor.engaged());
  report = monitor.report();
  EXPECT_EQ(report.exits, 1u);
  EXPECT_EQ(report.pins_restored, 1u);  // Client A's revoked pin returns.
  EXPECT_EQ(rig.adm.quota_scale_percent(), 100);
  EXPECT_EQ(rig.adm.quota_steps(), 2u);
  EXPECT_EQ(rig.aggregate.snapshot().pressure_transitions, 2u);
}

TEST(Overload, PressureHysteresisBandHolds) {
  PressureRig rig;
  PressureConfig config;
  config.enabled = true;
  PressureMonitor monitor(rig.cache, rig.adm, rig.derived, rig.aggregate,
                          PressureRig::kKeepParams, 4 * kStepBytes,
                          kStepBytes, config);

  // Demand 3 of 4 steps (0.75): inside the band — engages nothing.
  const int a = rig.adm.register_client();
  rig.apply(rig.adm.set_window(a, 0, 3, 1));
  const int b = rig.adm.register_client();
  rig.apply(rig.adm.set_window(b, 4, 4, 4));
  EXPECT_EQ(monitor.sample(), 0);
  monitor.poll();
  EXPECT_FALSE(monitor.engaged());

  // Engage at 1.0, then drop back to 0.75: inside the band — stays
  // engaged (release needs <= 0.65).
  const int c = rig.adm.register_client();
  rig.apply(rig.adm.set_window(c, 5, 5, 5));
  monitor.poll();
  ASSERT_TRUE(monitor.engaged());
  for (const int s : rig.adm.release_client(c)) rig.cache.unpin(s);
  EXPECT_EQ(monitor.sample(), 0);
  monitor.poll();
  EXPECT_TRUE(monitor.engaged());
  EXPECT_EQ(monitor.report().exits, 0u);
}

// --- Stuck-strand watchdog ------------------------------------------------

TEST(Overload, WatchdogObservesOverdueCommand) {
  SessionManagerConfig config;
  config.command_threads = 1;
  // Manual scans only — deterministic.
  config.watchdog_interval_ms = 0.0;
  SessionManager manager(slow_source(4, 150), config);
  const int id = manager.create_session();

  Command query;
  query.kind = CommandKind::kHistogram;
  query.step = 0;
  // Budget 5 ms: survives the start-of-command check, then sits inside
  // the 150 ms demand load — overdue (4 x 5 ms) long before it returns.
  query.deadline_ms = 5.0;
  manager.submit(id, query);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const WatchdogReport scan = manager.watchdog_scan_now();
  EXPECT_EQ(scan.scans, 1u);
  EXPECT_GE(scan.stuck_observations, 1u);
  EXPECT_EQ(scan.last_session, id);
  EXPECT_EQ(scan.last_kind, static_cast<int>(CommandKind::kHistogram));
  EXPECT_GT(scan.last_overdue_ms, 0.0);
  manager.drain(id);

  // Unlimited-budget commands are never reported stuck.
  query.deadline_ms = 0.0;
  manager.submit(id, query);
  const WatchdogReport idle = manager.watchdog_scan_now();
  EXPECT_EQ(idle.stuck_observations, scan.stuck_observations);
  manager.drain(id);
  EXPECT_EQ(manager.watchdog_report().scans, 2u);
}

TEST(Overload, WatchdogBackgroundThreadScans) {
  SessionManagerConfig config;
  config.watchdog_interval_ms = 2.0;
  SessionManager manager(ramp_source(4), config);
  for (int i = 0; i < 500; ++i) {
    if (manager.watchdog_report().scans > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(manager.watchdog_report().scans, 0u);
}

}  // namespace
}  // namespace ifet
