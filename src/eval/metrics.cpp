#include "eval/metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ifet {

double MaskScore::precision() const {
  std::size_t denom = true_positive + false_positive;
  return denom > 0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double MaskScore::recall() const {
  std::size_t denom = true_positive + false_negative;
  return denom > 0 ? static_cast<double>(true_positive) / denom : 0.0;
}

double MaskScore::f1() const {
  double p = precision();
  double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double MaskScore::jaccard() const {
  std::size_t denom = true_positive + false_positive + false_negative;
  return denom > 0 ? static_cast<double>(true_positive) / denom : 0.0;
}

MaskScore score_mask(const Mask& predicted, const Mask& ground_truth) {
  IFET_REQUIRE(predicted.dims() == ground_truth.dims(),
               "score_mask: dimension mismatch");
  MaskScore s;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] != 0;
    const bool g = ground_truth[i] != 0;
    if (p && g) {
      ++s.true_positive;
    } else if (p && !g) {
      ++s.false_positive;
    } else if (!p && g) {
      ++s.false_negative;
    } else {
      ++s.true_negative;
    }
  }
  return s;
}

double coverage(const Mask& mask, const Mask& region) {
  IFET_REQUIRE(mask.dims() == region.dims(), "coverage: dimension mismatch");
  std::size_t region_count = 0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (region[i]) {
      ++region_count;
      if (mask[i]) ++hit;
    }
  }
  return region_count > 0 ? static_cast<double>(hit) / region_count : 0.0;
}

double masked_mean_abs_difference(const VolumeF& a, const VolumeF& b,
                                  const Mask& region) {
  IFET_REQUIRE(a.dims() == b.dims() && a.dims() == region.dims(),
               "masked_mean_abs_difference: dimension mismatch");
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!region[i]) continue;
    total += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace ifet
