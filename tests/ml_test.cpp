#include <gtest/gtest.h>

#include <cmath>

#include "ml/classifier.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/svm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ifet {
namespace {

/// Two Gaussian blobs in 2D, linearly separable.
TrainingSet blob_set(std::uint64_t seed, int per_class, double separation) {
  Rng rng(seed);
  TrainingSet set;
  for (int s = 0; s < per_class; ++s) {
    set.add({rng.normal(0.3, 0.08), rng.normal(0.3, 0.08)}, {0.0});
    set.add({rng.normal(0.3 + separation, 0.08),
             rng.normal(0.3 + separation, 0.08)},
            {1.0});
  }
  return set;
}

/// XOR-style checkerboard (NOT linearly separable; defeats naive Bayes and
/// linear models, solvable by the MLP and the RBF SVM).
TrainingSet xor_set(std::uint64_t seed, int per_quadrant) {
  Rng rng(seed);
  TrainingSet set;
  for (int s = 0; s < per_quadrant; ++s) {
    for (int qx = 0; qx < 2; ++qx) {
      for (int qy = 0; qy < 2; ++qy) {
        double x = 0.25 + 0.5 * qx + rng.normal(0.0, 0.05);
        double y = 0.25 + 0.5 * qy + rng.normal(0.0, 0.05);
        set.add({x, y}, {qx == qy ? 0.0 : 1.0});
      }
    }
  }
  return set;
}

double accuracy(const BinaryClassifier& clf, const TrainingSet& set) {
  std::size_t correct = 0;
  for (std::size_t s = 0; s < set.size(); ++s) {
    bool predicted = clf.predict(set[s].input) >= 0.5;
    bool truth = set[s].target[0] >= 0.5;
    if (predicted == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(set.size());
}

class EngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineTest, SeparatesGaussianBlobs) {
  TrainingSet train = blob_set(1, 60, 0.4);
  TrainingSet test = blob_set(2, 40, 0.4);
  auto clf = make_classifier(GetParam(), 2, 7);
  clf->fit(train, 400);
  EXPECT_GT(accuracy(*clf, test), 0.95) << clf->name();
}

TEST_P(EngineTest, OutputsAreProbabilities) {
  TrainingSet train = blob_set(3, 30, 0.4);
  auto clf = make_classifier(GetParam(), 2, 7);
  clf->fit(train, 200);
  Rng rng(5);
  for (int s = 0; s < 50; ++s) {
    double p = clf->predict(
        std::vector<double>{rng.uniform(-1, 2), rng.uniform(-1, 2)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(EngineTest, NameMatchesFactory) {
  auto clf = make_classifier(GetParam(), 2, 7);
  EXPECT_EQ(clf->name(), engine_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineKind::kMlp, EngineKind::kSvm,
                                           EngineKind::kNaiveBayes));

TEST(SvmClassifier, SolvesXor) {
  TrainingSet train = xor_set(11, 40);
  SvmClassifier svm(2, 13);
  svm.fit(train, 0);
  EXPECT_GT(accuracy(svm, xor_set(12, 20)), 0.9);
  EXPECT_GT(svm.support_vector_count(), 0u);
}

TEST(NaiveBayes, CannotSolveXor) {
  // The independence assumption makes the checkerboard unlearnable —
  // documenting the engine's known limitation.
  TrainingSet train = xor_set(21, 40);
  NaiveBayesClassifier nb(2);
  nb.fit(train, 0);
  EXPECT_LT(accuracy(nb, xor_set(22, 20)), 0.75);
}

TEST(MlpEngine, SolvesXor) {
  TrainingSet train = xor_set(31, 40);
  auto clf = make_classifier(EngineKind::kMlp, 2, 17);
  clf->fit(train, 1500);
  EXPECT_GT(accuracy(*clf, xor_set(32, 20)), 0.9);
}

TEST(SvmClassifier, DecisionSignMatchesPrediction) {
  TrainingSet train = blob_set(41, 40, 0.5);
  SvmClassifier svm(2, 43);
  svm.fit(train, 0);
  Rng rng(44);
  for (int s = 0; s < 30; ++s) {
    std::vector<double> x{rng.uniform(0, 1), rng.uniform(0, 1)};
    double d = svm.decision(x);
    double p = svm.predict(x);
    EXPECT_EQ(d >= 0.0, p >= 0.5);
  }
}

TEST(SvmClassifier, ValidatesInputs) {
  SvmClassifier svm(3, 1);
  TrainingSet empty;
  EXPECT_THROW(svm.fit(empty, 0), Error);
  TrainingSet wrong;
  wrong.add({1.0}, {1.0});
  EXPECT_THROW(svm.fit(wrong, 0), Error);
  SvmConfig bad;
  bad.c = -1.0;
  EXPECT_THROW(SvmClassifier(3, 1, bad), Error);
}

TEST(NaiveBayes, RecoverersClassMoments) {
  // One strongly informative feature, one noise feature: the posterior
  // must track the informative one.
  Rng rng(51);
  TrainingSet set;
  for (int s = 0; s < 300; ++s) {
    set.add({rng.normal(0.2, 0.05), rng.uniform()}, {0.0});
    set.add({rng.normal(0.8, 0.05), rng.uniform()}, {1.0});
  }
  NaiveBayesClassifier nb(2);
  nb.fit(set, 0);
  EXPECT_GT(nb.predict(std::vector<double>{0.8, 0.5}), 0.95);
  EXPECT_LT(nb.predict(std::vector<double>{0.2, 0.5}), 0.05);
  // The noise feature alone should not decide.
  double mid = nb.predict(std::vector<double>{0.5, 0.9});
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 0.9);
}

TEST(NaiveBayes, RequiresBothClasses) {
  TrainingSet set;
  set.add({0.1, 0.2}, {1.0});
  NaiveBayesClassifier nb(2);
  EXPECT_THROW(nb.fit(set, 0), Error);
}

TEST(NaiveBayes, PredictBeforeFitThrows) {
  NaiveBayesClassifier nb(2);
  EXPECT_THROW(nb.predict(std::vector<double>{0.1, 0.2}), Error);
}

TEST(NaiveBayes, DegenerateFeatureDoesNotBlowUp) {
  TrainingSet set;
  for (int s = 0; s < 20; ++s) {
    set.add({0.5, s * 0.01}, {0.0});        // feature 0 constant
    set.add({0.5, 0.5 + s * 0.01}, {1.0});
  }
  NaiveBayesClassifier nb(2);
  nb.fit(set, 0);
  double p = nb.predict(std::vector<double>{0.5, 0.6});
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 0.5);
}

}  // namespace
}  // namespace ifet
