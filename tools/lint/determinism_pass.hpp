// Determinism pass: reproducibility-contract escape analysis
// (docs/STATIC_ANALYSIS.md, docs/CORRECTNESS.md).
//
// Walks the same cross-TU call graph as the hot-path pass
// (callgraph_pass.hpp) but roots at IFET_DETERMINISTIC
// (src/util/hot_path.hpp): an annotated function promises bitwise-equal
// results regardless of thread count, submission order, cache
// temperature, hash layout, or pointer values — the contract the repo's
// memcmp gates (FlatMlp vs Mlp::forward, brick-skip vs scalar raycast,
// tight-vs-unlimited server runs) check dynamically and
// util/determinism.hpp's ReplayCheck perturbs at bench time. Any function
// reachable from a root that observes an escape is reported with the full
// call chain. Rules (all under exit bit 16):
//   det-unordered-iter  range-for over a std::unordered_map/set member or
//                       local — iteration order is hash-layout-dependent,
//                       so anything derived from the traversal order is
//                       unstable across runs and library versions. Only
//                       receivers that resolve to a declared unordered
//                       container (directly or through a `using` alias)
//                       are reported; unresolvable receivers produce no
//                       finding, mirroring the lock-rank resolution.
//   det-rand-time       rand()/srand/random_device and wall-clock reads
//                       (chrono ::now, time(...), gettimeofday, ...).
//                       Seeded mt19937 engines are reproducible and not
//                       flagged.
//   det-pointer-order   std::hash/less/greater over pointer types and
//                       pointer-to-uintptr_t casts: allocation addresses
//                       differ run to run.
//   det-float-reduce    std::reduce/transform_reduce, parallel execution
//                       policies, atomic<float/double> accumulation —
//                       floating-point addition does not associate, so
//                       reduction order must be fixed (the ThreadPool's
//                       parallel_reduce combines partials in range order
//                       and is fine).
//   det-env             getenv/locale: results must not depend on the
//                       launch environment.
//
// Waivers: `IFET_DET_ALLOW("reason")` on the offending line or the line
// above, or the ordinary `// ifet-lint: allow(<rule>)` marker. Baseline
// entries use the same rule|module/file|symbol key as every other pass.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph_pass.hpp"
#include "lint/tokenizer.hpp"

namespace ifet_lint {

namespace cg_detail {

/// True when a range-for receiver resolves to a container declared
/// unordered — directly, or through a declared type that aliases one.
inline bool is_unordered_recv(const Model& model, const FnNode& node,
                              const std::string& cls,
                              const std::string& recv) {
  if (node.unordered_locals.count(recv) != 0) return true;
  auto lit = node.local_types.find(recv);
  if (lit != node.local_types.end() &&
      model.unordered_aliases.count(resolve_type(model, lit->second)) != 0) {
    return true;
  }
  auto cit = model.classes.find(cls);
  if (cit != model.classes.end()) {
    if (cit->second.unordered_members.count(recv) != 0) return true;
    auto mit = cit->second.member_types.find(recv);
    if (mit != cit->second.member_types.end() &&
        model.unordered_aliases.count(resolve_type(model, mit->second)) !=
            0) {
      return true;
    }
  }
  return false;
}

}  // namespace cg_detail

/// Runs the determinism escape analysis over a prebuilt call graph.
inline void run_determinism_pass(const std::vector<SourceFile>& files,
                                 const cg_detail::Analysis& analysis,
                                 std::vector<Finding>& findings) {
  using namespace cg_detail;
  const Model& model = analysis.model;
  ReachMap reached = reach_from_roots(analysis, &FnNode::det);

  std::set<std::string> emitted;
  for (const auto& [key, node] : model.fns) {
    auto rit = reached.find(key);
    if (rit == reached.end()) continue;
    const std::string& root = rit->second.first;
    for (const Violation& v : node.violations) {
      if (v.rule.rfind("det-", 0) != 0) continue;
      std::string what = v.what;
      if (v.rule == "det-unordered-iter") {
        // Every range-for is recorded as a candidate; only receivers that
        // resolve to a declared unordered container are findings.
        if (!is_unordered_recv(model, node, v.cls, v.mutex)) continue;
        what = "iterates unordered container '" + v.mutex +
               "' in hash order";
      }
      const SourceFile& file = files[v.file_index];
      const std::size_t idx = v.line - 1;
      if (suppressed(file.raw, idx, v.rule)) continue;
      if (det_allow_waived(file.code, idx)) continue;
      const std::string dedup_key =
          v.rule + "|" + file.path.string() + "|" + std::to_string(v.line);
      if (!emitted.insert(dedup_key).second) continue;
      Finding f;
      f.path = file.path.string();
      f.line = v.line;
      f.rule = v.rule;
      f.symbol = key;
      f.chain = chain_of(reached, key);
      f.message = what + " in '" + key +
                  "', reachable from IFET_DETERMINISTIC root '" + root +
                  "' via " + f.chain +
                  "; deterministic kernels must not observe hash order, "
                  "wall clocks, pointer identity, or reduction order "
                  "(waive with IFET_DET_ALLOW(reason))";
      findings.push_back(std::move(f));
    }
  }
}

/// Compatibility entry point: builds the graph itself (fixture drivers).
inline void run_determinism_pass(const std::vector<SourceFile>& files,
                                 std::vector<Finding>& findings) {
  run_determinism_pass(files, cg_detail::build_analysis(files), findings);
}

}  // namespace ifet_lint
