// Fixture (should FAIL): tracker.hpp and frontier.hpp include each other.
#pragma once
#include "core/frontier.hpp"

struct Tracker {
  Frontier* frontier;
};
