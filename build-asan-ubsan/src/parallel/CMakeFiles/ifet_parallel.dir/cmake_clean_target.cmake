file(REMOVE_RECURSE
  "libifet_parallel.a"
)
