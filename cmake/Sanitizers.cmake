# Sanitizer instrumentation for the whole tree.
#
# IFET_SANITIZE is a semicolon list drawn from {address;undefined;thread},
# e.g. -DIFET_SANITIZE="address;undefined". The asan-ubsan and tsan entries
# in CMakePresets.json are the intended front doors. Flags are applied
# globally (compile + link) so every library, test, bench, and tool in the
# build is instrumented consistently — mixing instrumented and plain TUs
# produces false negatives.

set(IFET_SANITIZE "" CACHE STRING
    "Sanitizers to build with (semicolon list of: address;undefined;thread)")

if(IFET_SANITIZE)
  if("address" IN_LIST IFET_SANITIZE AND "thread" IN_LIST IFET_SANITIZE)
    message(FATAL_ERROR
        "IFET_SANITIZE: 'address' and 'thread' cannot be combined; "
        "use the asan-ubsan and tsan presets as separate builds")
  endif()
  foreach(san IN LISTS IFET_SANITIZE)
    if(san STREQUAL "address")
      # Frame pointers and disabled sibling calls keep ASan stack traces
      # exact through the inlined hot loops.
      add_compile_options(-fsanitize=address -fno-omit-frame-pointer
                          -fno-optimize-sibling-calls)
      add_link_options(-fsanitize=address)
    elseif(san STREQUAL "undefined")
      # Recover disabled: any UB report fails the process (and thus ctest)
      # instead of printing and continuing.
      add_compile_options(-fsanitize=undefined -fno-sanitize-recover=all)
      add_link_options(-fsanitize=undefined)
    elseif(san STREQUAL "thread")
      add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
      add_link_options(-fsanitize=thread)
    else()
      message(FATAL_ERROR
          "IFET_SANITIZE: unknown sanitizer '${san}' "
          "(expected address, undefined, or thread)")
    endif()
  endforeach()
  message(STATUS "ifet: sanitizers enabled: ${IFET_SANITIZE}")
endif()
