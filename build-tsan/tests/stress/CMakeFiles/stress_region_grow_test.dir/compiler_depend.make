# Empty compiler generated dependencies file for stress_region_grow_test.
# This may be replaced when dependencies are built.
