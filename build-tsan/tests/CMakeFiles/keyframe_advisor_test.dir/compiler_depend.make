# Empty compiler generated dependencies file for keyframe_advisor_test.
# This may be replaced when dependencies are built.
