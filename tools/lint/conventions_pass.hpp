// Conventions pass: the per-file repo-convention rules (the original
// single-pass ifet_lint). Each rule exists because the violation it
// catches has silently corrupted results in systems like this one before
// it ever crashed; docs/CORRECTNESS.md explains every rule. Matching runs
// against the comment/string-stripped `code` view, so prose mentioning
// `rand()` or a brace in a string can no longer confuse a rule.
#pragma once

#include <algorithm>
#include <cctype>
#include <regex>
#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace ifet_lint {

inline bool in_volume_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "volume") return true;
  }
  return false;
}

/// Directories whose files may call the raw volume-load functions: the I/O
/// layer defines them, the streaming layer is the one sanctioned caller.
inline bool may_load_volumes(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "io" || part == "stream") return true;
  }
  return false;
}

/// Directories whose per-voxel passes must use the flat batched inference
/// engine (the scalar-forward-in-hot-loop rule's scope).
inline bool in_hot_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "core" || part == "render") return true;
  }
  return false;
}

/// The streaming layer is the sanctioned place to field load failures
/// broadly (it retries, quarantines, and reattributes them), so the
/// broad-catch-io rule exempts it.
inline bool in_stream_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "stream") return true;
  }
  return false;
}

inline void run_conventions_pass(const SourceFile& file,
                                 std::vector<Finding>& findings) {
  static const std::regex raw_rand_re(R"(\b(rand|srand)\s*\()");
  static const std::regex raw_time_re(R"(\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  static const std::regex catch_all_re(R"(catch\s*\(\s*\.\.\.\s*\))");
  static const std::regex data_member_re(R"(\bdata_\s*\[)");
  static const std::regex volume_load_re(R"(\b(read_vol|read_raw)\s*\()");
  static const std::regex dims_param_re(
      R"([(,]\s*(const\s+)?(ifet::)?Dims\s*[&)\s,])");
  // Longest alternatives first: std::regex picks the leftmost alternative,
  // and `parallel_for` followed by `_ranges` must not stop the match.
  static const std::regex loop_re(
      R"(\b(parallel_for_ranges|parallel_for_dynamic|parallel_for_static|parallel_for|for|while)\s*\()");
  static const std::regex scalar_forward_re(
      R"((\.|->)\s*forward(_scalar)?\s*\()");

  const bool header = is_header(file.path);
  const bool volume_dir = in_volume_dir(file.path);
  const bool loader_dir = may_load_volumes(file.path);
  const bool hot_dir = in_hot_dir(file.path);
  bool has_contract_check = false;
  bool has_dims_param = false;
  std::size_t first_dims_line = 0;
  // Loop-body tracking for scalar-forward-in-hot-loop: brace depth plus the
  // depths at which a loop (or parallel_for lambda) body opened. A pending
  // loop header adopts the next `{` as its body.
  int depth = 0;
  std::vector<int> loop_body_depths;
  bool pending_loop = false;

  auto report = [&](std::size_t i, const char* rule, const char* message) {
    if (suppressed(file.raw, i, rule)) return;
    findings.push_back({file.path.string(), i + 1, rule, message});
  };

  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (line.find("IFET_REQUIRE") != std::string::npos ||
        line.find("IFET_DEBUG_ASSERT") != std::string::npos) {
      has_contract_check = true;
    }
    if (!has_dims_param && std::regex_search(line, dims_param_re)) {
      has_dims_param = true;
      first_dims_line = i + 1;
    }

    if (header && line.find("#include <iostream>") != std::string::npos) {
      report(i, "iostream-in-header",
             "headers must use <iosfwd>; include <iostream> in the .cpp");
    }
    if (std::regex_search(line, raw_rand_re) ||
        std::regex_search(line, raw_time_re)) {
      report(i, "raw-rand",
             "use an explicitly seeded ifet::Rng (util/rng.hpp); "
             "rand()/time() seeding breaks reproducibility");
    }
    if (std::regex_search(line, catch_all_re)) {
      report(i, "catch-all",
             "catch concrete exception types; a bare catch (...) hides "
             "corruption the sanitizers would otherwise surface");
    }
    if (!volume_dir && (line.find(".data()[") != std::string::npos ||
                        std::regex_search(line, data_member_re))) {
      report(i, "voxel-raw-access",
             "raw voxel indexing outside src/volume; use at(), the "
             "debug-checked operator[], clamped(), or sample()");
    }
    if (!loader_dir && std::regex_search(line, volume_load_re)) {
      report(i, "direct-volume-load",
             "load volumes through the streaming layer (VolumeStore / "
             "StreamedSequence) so the bytes are budgeted; direct "
             "read_vol()/read_raw() is reserved for src/io and src/stream");
    }
    if (hot_dir) {
      std::ptrdiff_t call_pos = -1;
      std::smatch m;
      if (std::regex_search(line, m, scalar_forward_re)) {
        call_pos = m.position(0);
      }
      if (std::regex_search(line, loop_re)) pending_loop = true;
      for (std::size_t c = 0; c < line.size(); ++c) {
        if (call_pos == static_cast<std::ptrdiff_t>(c) &&
            !loop_body_depths.empty()) {
          report(i, "scalar-forward-in-hot-loop",
                 "scalar Mlp forward inside a loop body; per-voxel passes "
                 "must batch through FlatMlp::forward_batch "
                 "(nn/flat_mlp.hpp) — the scalar path allocates per call");
        }
        if (line[c] == '{') {
          ++depth;
          if (pending_loop) {
            loop_body_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (line[c] == '}') {
          if (!loop_body_depths.empty() && loop_body_depths.back() == depth) {
            loop_body_depths.pop_back();
          }
          --depth;
        }
      }
    }
  }

  const auto ext = file.path.extension().string();
  if ((ext == ".cpp" || ext == ".cc") && has_dims_param &&
      !has_contract_check && !file_suppressed(file.raw, "extent-unchecked")) {
    findings.push_back(
        {file.path.string(), first_dims_line, "extent-unchecked",
         "file handles Dims extents but contains no IFET_REQUIRE / "
         "IFET_DEBUG_ASSERT validating them"});
  }

  // broad-catch-io: try/catch spans lines, so this rule runs on the joined
  // code view with explicit brace matching instead of per-line regexes. A
  // broad handler (catch (...) / catch (const std::exception&)) around a
  // volume-load call site flattens the typed IoError taxonomy the
  // retry/quarantine machinery dispatches on; only src/stream may do that.
  if (!in_stream_dir(file.path)) {
    static const std::regex io_load_re(
        R"(\b(read_vol|read_raw|open_cvol|open_vol_files|fetch|generate)\s*\()");
    static const std::regex broad_decl_re(
        R"(^\s*(\.\.\.|(const\s+)?(std::\s*)?exception\s*&?\s*\w*)\s*$)");
    static const std::regex try_re(R"(\btry\s*\{)");

    std::string text;
    std::vector<std::size_t> line_starts;
    for (const auto& code_line : file.code) {
      line_starts.push_back(text.size());
      text += code_line;
      text += '\n';
    }
    auto line_at = [&](std::size_t pos) {
      auto it =
          std::upper_bound(line_starts.begin(), line_starts.end(), pos);
      return static_cast<std::size_t>(it - line_starts.begin()) - 1;
    };
    auto match_brace = [&](std::size_t open) {
      int brace_depth = 0;
      for (std::size_t p = open; p < text.size(); ++p) {
        if (text[p] == '{') ++brace_depth;
        if (text[p] == '}' && --brace_depth == 0) return p;
      }
      return std::string::npos;
    };

    for (auto it = std::sregex_iterator(text.begin(), text.end(), try_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                               static_cast<std::size_t>(it->length(0)) - 1;
      const std::size_t close = match_brace(open);
      if (close == std::string::npos) break;  // unbalanced; give up quietly
      const std::string body = text.substr(open + 1, close - open - 1);
      const bool loads = std::regex_search(body, io_load_re);

      std::size_t pos = close + 1;
      while (true) {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
        if (pos + 5 > text.size() || text.compare(pos, 5, "catch") != 0) {
          break;
        }
        const std::size_t decl_open = text.find('(', pos);
        const std::size_t decl_close =
            decl_open == std::string::npos ? std::string::npos
                                           : text.find(')', decl_open);
        const std::size_t body_open =
            decl_close == std::string::npos ? std::string::npos
                                            : text.find('{', decl_close);
        const std::size_t body_close = body_open == std::string::npos
                                           ? std::string::npos
                                           : match_brace(body_open);
        if (body_close == std::string::npos) break;
        const std::string decl =
            text.substr(decl_open + 1, decl_close - decl_open - 1);
        if (loads && std::regex_match(decl, broad_decl_re)) {
          report(line_at(pos), "broad-catch-io",
                 "broad catch around a volume-load call site flattens the "
                 "typed IoError taxonomy; catch TransientIoError / "
                 "CorruptDataError / NotFoundError (util/io_error.hpp) or "
                 "let the streaming layer's retry/quarantine field it");
        }
        pos = body_close + 1;
      }
    }
  }
}

}  // namespace ifet_lint
