#include "server/session_manager.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <utility>
#include <vector>

#include "core/tracking.hpp"
#include "io/checksum.hpp"
#include "render/camera.hpp"
#include "tf/transfer_function.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/timer.hpp"

namespace ifet {

namespace {

IFET_DETERMINISTIC std::uint32_t digest_tf(const TransferFunction1D& tf) {
  std::array<double, TransferFunction1D::kEntries> opacities{};
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    opacities[static_cast<std::size_t>(e)] = tf.opacity_entry(e);
  }
  return crc32(opacities.data(), sizeof(opacities));
}

IFET_DETERMINISTIC std::uint32_t digest_volume(const VolumeF& volume) {
  auto data = volume.data();
  return crc32(data.data(), data.size() * sizeof(float));
}

IFET_DETERMINISTIC std::uint32_t digest_cumhist(const CumulativeHistogram& ch) {
  std::vector<double> fractions;
  fractions.reserve(static_cast<std::size_t>(ch.bins()));
  const double width = (ch.hi() - ch.lo()) / ch.bins();
  for (int b = 0; b < ch.bins(); ++b) {
    fractions.push_back(ch.fraction_at(ch.lo() + (b + 0.5) * width));
  }
  return crc32(fractions.data(), fractions.size() * sizeof(double));
}

IFET_DETERMINISTIC std::uint32_t digest_track(const TrackResult& result) {
  std::uint32_t digest = 0;
  for (const auto& [step, mask] : result.masks) {
    digest = crc32(&step, sizeof(step), digest);
    auto data = mask.data();
    digest = crc32(data.data(), data.size(), digest);
  }
  return digest;
}

/// Steady-clock nanoseconds for the watchdog's busy-window arithmetic.
std::int64_t watchdog_now_ns() {
  IFET_DET_ALLOW("watchdog sampling reads the clock; it only reports "
                 "overdue commands, never alters results");
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShedAction decide_backpressure(BackpressurePolicy policy,
                               std::size_t queue_depth,
                               std::size_t max_queue_depth,
                               bool queue_has_sheddable) {
  if (max_queue_depth == 0 || queue_depth < max_queue_depth) {
    return ShedAction::kAccept;
  }
  if (policy == BackpressurePolicy::kShedOldest && queue_has_sheddable) {
    return ShedAction::kShedOldest;
  }
  return ShedAction::kRejectNew;
}

struct SessionManager::ServerSession {
  int id = -1;
  // Declaration order is the lifetime contract: painting/tf hold
  // references into *view, so view is declared first (destroyed last).
  std::unique_ptr<ClientSequenceView> view;
  std::unique_ptr<PaintingSession> painting;
  std::unique_ptr<TfSession> tf;
  /// Params hash this session holds a tf_hash_refs_ reference for.
  /// Written only under the manager's mutex_, and only by this session's
  /// own (serialized) command stream or create/close.
  std::uint64_t tf_hash = 0;

  /// One accepted strand entry: the command, its ABSOLUTE deadline
  /// (stamped at accept, so queue time counts), the relative budget the
  /// watchdog compares elapsed time against, and the completion callback.
  struct QueuedCommand {
    Command command;
    Deadline deadline;
    double budget_ms = 0.0;
    std::function<void(const ServerResult&)> done;
  };

  // The strand: per-session FIFO queue drained by at most one pool task.
  OrderedMutex strand{MutexRank::kServerStrand};
  std::condition_variable_any idle;
  std::deque<QueuedCommand> queue IFET_GUARDED_BY(strand);
  bool running IFET_GUARDED_BY(strand) = false;
  std::size_t peak_depth IFET_GUARDED_BY(strand) = 0;
  /// Recent service time (EWMA, 0.8/0.2) — the retry-after hint's base.
  double ewma_service_ms IFET_GUARDED_BY(strand) = 0.0;

  // Watchdog sampling window, published by the drain loop and read
  // lock-free by watchdog_scan_now(). busy_since_ns is the latch: 0 means
  // idle; kind and budget are stored BEFORE it (release) so a scan that
  // observes a nonzero timestamp sees a consistent triple.
  std::atomic<std::int64_t> busy_since_ns{0};
  std::atomic<std::int64_t> busy_budget_ns{0};  ///< 0 = unlimited budget.
  std::atomic<int> busy_kind{-1};
};

SessionManager::SessionManager(std::shared_ptr<const VolumeSource> source,
                               const SessionManagerConfig& config)
    : config_(config),
      tier_(std::move(source), config.tier),
      command_pool_(config.command_threads) {
  if (config_.watchdog_interval_ms > 0.0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

SessionManager::~SessionManager() {
  // Stop the watchdog before draining: its scan walks sessions_ and must
  // not race the teardown below.
  stop_watchdog();
  drain_all();
  // No strand task can be queued or running past shutdown(); destroying
  // the sessions (and then tier_) is now single-threaded.
  command_pool_.shutdown();
  OrderedMutexLock lock(mutex_);
  sessions_.clear();
}

int SessionManager::create_session(FailPolicy fail_policy) {
  auto session = std::make_shared<ServerSession>();
  ClientViewConfig view_config;
  view_config.pin_radius = config_.pin_radius;
  view_config.fail_policy = fail_policy;
  session->view = std::make_unique<ClientSequenceView>(tier_, view_config);
  session->painting =
      std::make_unique<PaintingSession>(*session->view, config_.painting);
  session->tf = std::make_unique<TfSession>(*session->view, config_.tf);
  session->tf_hash = session->tf->iatf().params_hash();

  OrderedMutexLock lock(mutex_);
  session->id = next_id_++;
  ++tf_hash_refs_[session->tf_hash];
  const int id = session->id;
  sessions_.emplace(id, std::move(session));
  return id;
}

void SessionManager::close_session(int id) {
  auto session = find(id);
  drain_wait(*session);
  std::uint64_t to_invalidate = 0;
  {
    OrderedMutexLock lock(mutex_);
    sessions_.erase(id);
    to_invalidate = release_hash_locked(session->tf_hash);
  }
  if (to_invalidate != 0) tier_.derived().invalidate(to_invalidate);
  // `session` (usually the last reference) dies here; the view destructor
  // unpins the client's window on the shared cache.
}

std::shared_ptr<SessionManager::ServerSession> SessionManager::find(
    int id) const {
  OrderedMutexLock lock(mutex_);
  auto it = sessions_.find(id);
  IFET_REQUIRE(it != sessions_.end(),
               "SessionManager: unknown session id " + std::to_string(id));
  return it->second;
}

std::size_t SessionManager::session_count() const {
  OrderedMutexLock lock(mutex_);
  return sessions_.size();
}

StreamStats SessionManager::session_stats(int id) const {
  return find(id)->view->stats().snapshot();
}

AdmissionStats SessionManager::session_admission(int id) const {
  return find(id)->view->admission_stats();
}

std::uint64_t SessionManager::release_hash_locked(std::uint64_t hash) {
  auto it = tf_hash_refs_.find(hash);
  if (it == tf_hash_refs_.end()) return 0;
  if (--it->second > 0) return 0;
  tf_hash_refs_.erase(it);
  // Another session may still be AT this hash's entries via the tier
  // histogram key — those use hist_params(), which is never a network
  // hash, but guard anyway: retiring the histogram key would drop
  // products every client shares.
  if (hash == tier_.hist_params()) return 0;
  return hash;
}

void SessionManager::reconcile_tf_hash(ServerSession& s) {
  const std::uint64_t now = s.tf->iatf().params_hash();
  if (now == s.tf_hash) return;
  std::uint64_t to_invalidate = 0;
  {
    OrderedMutexLock lock(mutex_);
    // Acquire the new state before releasing the old: if they were equal
    // the refcount must never transiently hit zero (it cannot — equality
    // is checked above — but the order also keeps a concurrent session at
    // the SAME old hash safe from a spurious retirement).
    ++tf_hash_refs_[now];
    to_invalidate = release_hash_locked(s.tf_hash);
    s.tf_hash = now;
  }
  // Invalidation runs with the registry lock released; entries under the
  // retired hash are unreachable (no live session can re-derive the key).
  if (to_invalidate != 0) tier_.derived().invalidate(to_invalidate);
}

ServerResult SessionManager::run_command(ServerSession& s,
                                         const Command& command) {
  ServerResult result;
  switch (command.kind) {
    case CommandKind::kPaint:
      result.value = static_cast<double>(
          s.painting->paint(command.step, command.stroke));
      break;
    case CommandKind::kSelectUnwanted:
      result.value = static_cast<double>(s.painting->select_unwanted_region(
          command.step, command.box_lo, command.box_hi));
      break;
    case CommandKind::kTrainClassifier:
      result.value = s.painting->train_epochs(command.epochs);
      break;
    case CommandKind::kClassify: {
      const VolumeF feedback = s.painting->feedback_volume(command.step);
      result.digest = digest_volume(feedback);
      break;
    }
    case CommandKind::kSetKeyFrame: {
      auto [vlo, vhi] = s.view->value_range();
      TransferFunction1D key(vlo, vhi);
      const double span = vhi - vlo;
      key.add_band(vlo + command.band_lo * span, vlo + command.band_hi * span,
                   command.band_peak, command.band_skirt * span);
      s.tf->set_key_frame(command.step, key);
      result.digest = digest_tf(key);
      break;
    }
    case CommandKind::kTrainTf:
      result.value = s.tf->train_epochs(command.epochs);
      break;
    case CommandKind::kQueryTf: {
      // Through the SHARED DerivedCache: identical network states (same
      // params hash) dedup across clients; the per-view stats pointer
      // attributes the hit/miss to this client.
      auto tf = tier_.derived().transfer_function(
          command.step, s.tf->iatf().params_hash(),
          [&]() -> TransferFunction1D {
            return s.tf->current_tf(command.step);
          },
          &s.view->stats());
      result.digest = digest_tf(*tf);
      break;
    }
    case CommandKind::kHistogram: {
      const CumulativeHistogram& ch =
          s.view->cumulative_histogram(command.step);
      result.digest = digest_cumhist(ch);
      result.value = static_cast<double>(ch.bins());
      break;
    }
    case CommandKind::kTrack: {
      AdaptiveTfCriterion criterion(s.tf->iatf(), command.opacity_cut,
                                    &tier_.derived());
      TrackerConfig tracker_config;
      tracker_config.min_step = command.track_min_step;
      tracker_config.max_step = command.track_max_step;
      Tracker tracker(*s.view, criterion, tracker_config);
      const TrackResult tracked = tracker.track(command.seed, command.step);
      result.digest = digest_track(tracked);
      double voxels = 0.0;
      for (const auto& [step, mask] : tracked.masks) {
        voxels += static_cast<double>(tracked.voxels_at(step));
      }
      result.value = voxels;
      break;
    }
    case CommandKind::kRender: {
      const Camera camera(command.azimuth, command.elevation,
                          command.distance);
      RenderSettings settings;
      settings.width = command.image_size;
      settings.height = command.image_size;
      RenderStats stats;
      const ImageRgb8 frame =
          s.tf->preview(command.step, camera, settings, {}, &stats);
      result.digest = crc32(frame.pixels.data(), frame.pixels.size());
      result.bricks_total = stats.bricks_total;
      result.bricks_active = stats.bricks_active;
      result.skip_rate = stats.skip_rate();
      break;
    }
    case CommandKind::kHintWindow:
      s.view->hint_window(command.window_lo, command.window_hi);
      break;
  }
  return result;
}

ServerResult SessionManager::run_command_noexcept(ServerSession& s,
                                                  const Command& command,
                                                  const Deadline& deadline) {
  ServerResult result;
  try {
    // Every blocking wait below (prefetch waits, retry backoffs, demand
    // loads) consults this scope; a command that already waited out its
    // budget in the queue fails typed right here, before any work.
    DeadlineScope scope(deadline);
    deadline.check("command start");
    result = run_command(s, command);
  } catch (const DeadlineExceeded& e) {
    result = ServerResult{};
    result.ok = false;
    result.status = ServerStatus::kDeadlineExceeded;
    result.error = e.what();
    s.view->stats().count_deadline_exceeded();
    tier_.aggregate().count_deadline_exceeded();
  } catch (const std::exception& e) {
    result = ServerResult{};
    result.ok = false;
    result.status = ServerStatus::kError;
    result.error = e.what();
  }
  // Training (or a failed command that got partway) may have moved the
  // session's network state; keep the shared-cache refcounts truthful.
  reconcile_tf_hash(s);
  return result;
}

Deadline SessionManager::stamp_deadline(const Command& command) const {
  const double budget_ms = command.deadline_ms > 0.0
                               ? command.deadline_ms
                               : config_.default_deadline_ms;
  return budget_ms > 0.0 ? Deadline::after_ms(budget_ms)
                         : Deadline::unlimited();
}

ServerResult SessionManager::execute(int id, const Command& command) {
  auto session = find(id);
  return run_command_noexcept(*session, command, stamp_deadline(command));
}

void SessionManager::submit(int id, Command command,
                            std::function<void(const ServerResult&)> done) {
  auto session = find(id);

  ServerSession::QueuedCommand item;
  item.budget_ms = command.deadline_ms > 0.0 ? command.deadline_ms
                                             : config_.default_deadline_ms;
  item.deadline = stamp_deadline(command);
  item.command = std::move(command);
  item.done = std::move(done);

  bool start = false;
  ShedAction action = ShedAction::kAccept;
  double retry_after_ms = 0.0;
  ServerSession::QueuedCommand victim;
  bool have_victim = false;
  {
    OrderedMutexLock lock(session->strand);
    // Oldest sheddable entry, if any (also answers "is one queued" for the
    // pure decision function). An explicit loop, not find_if: the
    // thread-safety analysis must see the guarded queue accessed under
    // the lock, which lambdas hide.
    auto victim_it = session->queue.begin();
    while (victim_it != session->queue.end() &&
           !command_is_sheddable(victim_it->command.kind)) {
      ++victim_it;
    }
    const bool has_sheddable = victim_it != session->queue.end();
    action = decide_backpressure(config_.backpressure, session->queue.size(),
                                 config_.max_queue_depth, has_sheddable);
    if (action != ShedAction::kAccept) {
      // Advisory backlog estimate: depth x recent service time (floored so
      // a cold session still suggests a nonzero backoff). Computed here,
      // OUTSIDE decide_backpressure — hints are wall-clock-ish estimates
      // and must never feed back into the deterministic decision.
      retry_after_ms = static_cast<double>(session->queue.size()) *
                       std::max(session->ewma_service_ms, 1.0);
    }
    if (action == ShedAction::kShedOldest) {
      victim = std::move(*victim_it);
      session->queue.erase(victim_it);
      have_victim = true;
    }
    if (action != ShedAction::kRejectNew) {
      session->queue.push_back(std::move(item));
      session->peak_depth =
          std::max(session->peak_depth, session->queue.size());
      if (!session->running) {
        session->running = true;
        start = true;
      }
    }
  }

  // Completion callbacks run with the strand lock RELEASED: a callback
  // that re-submits (a client retrying immediately) must not re-enter the
  // strand mutex.
  if (have_victim) {
    session->view->stats().count_shed();
    tier_.aggregate().count_shed();
    if (victim.done) {
      ServerResult shed;
      shed.ok = false;
      shed.status = ServerStatus::kOverloaded;
      shed.retry_after_ms = retry_after_ms;
      shed.error = "shed from full strand queue by newer work";
      victim.done(shed);
    }
  }
  if (action == ShedAction::kRejectNew) {
    session->view->stats().count_rejected();
    tier_.aggregate().count_rejected();
    if (item.done) {
      ServerResult refused;
      refused.ok = false;
      refused.status = ServerStatus::kOverloaded;
      refused.retry_after_ms = retry_after_ms;
      refused.error = "strand queue full";
      item.done(refused);
    }
    return;
  }

  if (!start) return;
  try {
    // The shared_ptr capture keeps the session alive even across a racing
    // close_session (close drains first, so the queue is empty by then).
    command_pool_.post([this, session] { drain_session(*session); });
  } catch (const PoolShutdownError&) {
    // Submitting while the manager is tearing down: no drain task will
    // run, so the strand must not look busy to drain_wait.
    OrderedMutexLock lock(session->strand);
    session->running = false;
    session->idle.notify_all();
    throw;
  }
}

void SessionManager::drain_session(ServerSession& s) {
  // Runs on a command-pool worker; must not throw (run_command_noexcept
  // absorbs command errors into the result).
  for (;;) {
    ServerSession::QueuedCommand item;
    {
      OrderedMutexLock lock(s.strand);
      if (s.queue.empty()) {
        s.running = false;
        s.idle.notify_all();
        return;
      }
      item = std::move(s.queue.front());
      s.queue.pop_front();
    }
    // Publish the execution window for the watchdog: kind and budget
    // first, then the since-timestamp (release) as the "in progress"
    // latch a scan keys on.
    s.busy_kind.store(static_cast<int>(item.command.kind),
                      std::memory_order_relaxed);
    s.busy_budget_ns.store(
        static_cast<std::int64_t>(item.budget_ms * 1e6),
        std::memory_order_relaxed);
    s.busy_since_ns.store(watchdog_now_ns(), std::memory_order_release);
    Stopwatch watch;
    const ServerResult result =
        run_command_noexcept(s, item.command, item.deadline);
    s.busy_since_ns.store(0, std::memory_order_release);
    const double service_ms = watch.milliseconds();
    {
      OrderedMutexLock lock(s.strand);
      s.ewma_service_ms = s.ewma_service_ms == 0.0
                              ? service_ms
                              : 0.8 * s.ewma_service_ms + 0.2 * service_ms;
    }
    if (item.done) item.done(result);
    // Let the tier's pressure monitor react to whatever this command just
    // pinned or derived (cheap when disabled or under the sample period).
    tier_.poll_pressure();
  }
}

SessionQueueStats SessionManager::session_queue(int id) const {
  auto session = find(id);
  OrderedMutexLock lock(session->strand);
  SessionQueueStats out;
  out.depth = session->queue.size();
  out.peak_depth = session->peak_depth;
  out.ewma_service_ms = session->ewma_service_ms;
  return out;
}

WatchdogReport SessionManager::watchdog_scan_now() {
  std::vector<std::shared_ptr<ServerSession>> all;
  {
    OrderedMutexLock lock(mutex_);
    all.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) all.push_back(session);
  }
  // Sampling runs with NO lock held (the kWatchdog contract): a stuck
  // strand must never be able to stall the scan that would report it.
  const std::int64_t now_ns = watchdog_now_ns();
  std::uint64_t stuck = 0;
  int worst_session = -1;
  int worst_kind = -1;
  double worst_overdue_ms = 0.0;
  for (const auto& session : all) {
    const std::int64_t since =
        session->busy_since_ns.load(std::memory_order_acquire);
    if (since == 0) continue;
    const std::int64_t budget =
        session->busy_budget_ns.load(std::memory_order_relaxed);
    if (budget <= 0) continue;  // Unlimited budgets are never "stuck".
    const double overdue_ms =
        (static_cast<double>(now_ns - since) -
         config_.watchdog_factor * static_cast<double>(budget)) /
        1e6;
    if (overdue_ms <= 0.0) continue;
    ++stuck;
    if (overdue_ms > worst_overdue_ms) {
      worst_overdue_ms = overdue_ms;
      worst_session = session->id;
      worst_kind = session->busy_kind.load(std::memory_order_relaxed);
    }
  }
  OrderedMutexLock lock(watchdog_mutex_);
  ++watchdog_report_.scans;
  watchdog_report_.stuck_observations += stuck;
  if (worst_session != -1) {
    watchdog_report_.last_session = worst_session;
    watchdog_report_.last_kind = worst_kind;
    watchdog_report_.last_overdue_ms = worst_overdue_ms;
  }
  return watchdog_report_;
}

WatchdogReport SessionManager::watchdog_report() const {
  OrderedMutexLock lock(watchdog_mutex_);
  return watchdog_report_;
}

void SessionManager::watchdog_loop() {
  const auto interval =
      std::chrono::duration<double, std::milli>(config_.watchdog_interval_ms);
  for (;;) {
    {
      OrderedMutexLock lock(watchdog_mutex_);
      if (watchdog_stop_) return;
      watchdog_cv_.wait_for(watchdog_mutex_, interval);
      if (watchdog_stop_) return;
    }
    // A spurious early wake just scans early; the report stays monotonic.
    watchdog_scan_now();
  }
}

void SessionManager::stop_watchdog() {
  if (!watchdog_thread_.joinable()) return;
  {
    OrderedMutexLock lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_thread_.join();
}

void SessionManager::drain_wait(ServerSession& s) {
  OrderedMutexLock lock(s.strand);
  while (s.running || !s.queue.empty()) s.idle.wait(s.strand);
}

void SessionManager::drain(int id) { drain_wait(*find(id)); }

void SessionManager::drain_all() {
  std::vector<std::shared_ptr<ServerSession>> all;
  {
    OrderedMutexLock lock(mutex_);
    all.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) all.push_back(session);
  }
  for (const auto& session : all) drain_wait(*session);
}

}  // namespace ifet
