// Regular 3D scalar grids — the fundamental data structure of the library.
//
// A Volume<T> is a dense dx*dy*dz grid stored in x-fastest order (matching
// the raw-file convention of the simulation data sets the paper uses).
// Voxel centers sit at integer coordinates; continuous sampling is
// trilinear with clamp-to-edge addressing, which is what the paper's
// 3D-texture renderer does in hardware.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "math/vec.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ifet {

/// Integer voxel coordinate.
struct Index3 {
  int x = 0, y = 0, z = 0;

  friend bool operator==(const Index3&, const Index3&) = default;
};

/// Grid extents.
struct Dims {
  int x = 0, y = 0, z = 0;

  constexpr std::size_t count() const {
    return static_cast<std::size_t>(x) * static_cast<std::size_t>(y) *
           static_cast<std::size_t>(z);
  }
  constexpr bool contains(int i, int j, int k) const {
    return i >= 0 && i < x && j >= 0 && j < y && k >= 0 && k < z;
  }
  constexpr bool contains(const Index3& p) const {
    return contains(p.x, p.y, p.z);
  }
  friend bool operator==(const Dims&, const Dims&) = default;
};

template <typename T>
class Volume {
 public:
  Volume() = default;

  /// Allocate a dx*dy*dz grid filled with `fill`.
  explicit Volume(Dims dims, T fill = T{}) : dims_(dims) {
    IFET_REQUIRE(dims.x > 0 && dims.y > 0 && dims.z > 0,
                 "Volume dimensions must be positive");
    data_.assign(dims.count(), fill);
  }

  const Dims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Linear index of voxel (i,j,k); x varies fastest. The coordinate must
  /// be in bounds (checked only under IFET_CHECKED_ITERATORS).
  std::size_t linear_index(int i, int j, int k) const {
    IFET_DEBUG_ASSERT(dims_.contains(i, j, k),
                      "Volume::linear_index out of range");
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(dims_.x) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(dims_.y) * static_cast<std::size_t>(k));
  }

  /// Voxel coordinate of a linear index.
  Index3 coord_of(std::size_t linear) const {
    IFET_DEBUG_ASSERT(linear < data_.size(), "Volume::coord_of out of range");
    const auto dx = static_cast<std::size_t>(dims_.x);
    const auto dy = static_cast<std::size_t>(dims_.y);
    return Index3{static_cast<int>(linear % dx),
                  static_cast<int>((linear / dx) % dy),
                  static_cast<int>(linear / (dx * dy))};
  }

  T& at(int i, int j, int k) {
    IFET_REQUIRE(dims_.contains(i, j, k), "Volume::at out of range");
    return data_[linear_index(i, j, k)];
  }
  const T& at(int i, int j, int k) const {
    IFET_REQUIRE(dims_.contains(i, j, k), "Volume::at out of range");
    return data_[linear_index(i, j, k)];
  }
  T& at(const Index3& p) { return at(p.x, p.y, p.z); }
  const T& at(const Index3& p) const { return at(p.x, p.y, p.z); }

  /// Unchecked access for hot loops (callers guarantee bounds); bounds are
  /// verified, throwing ifet::Error, when IFET_CHECKED_ITERATORS is on.
  T& operator[](std::size_t linear) {
    IFET_DEBUG_ASSERT(linear < data_.size(),
                      "Volume::operator[] out of range");
    return data_[linear];
  }
  const T& operator[](std::size_t linear) const {
    IFET_DEBUG_ASSERT(linear < data_.size(),
                      "Volume::operator[] out of range");
    return data_[linear];
  }

  /// Clamp-to-edge voxel fetch (any integer coordinate allowed).
  IFET_HOT T clamped(int i, int j, int k) const {
    i = std::clamp(i, 0, dims_.x - 1);
    j = std::clamp(j, 0, dims_.y - 1);
    k = std::clamp(k, 0, dims_.z - 1);
    return data_[linear_index(i, j, k)];
  }

  /// Trilinear sample at continuous voxel coordinates (clamp-to-edge).
  IFET_HOT double sample(double x, double y, double z) const {
    // Pre-clamp into the grid so the int casts below are defined for any
    // input, including NaN and values beyond int range; clamp-to-edge
    // already makes all out-of-range coordinates sample the boundary, so
    // results are unchanged for every previously-defined input.
    x = clamp_sample_coord(x, dims_.x - 1);
    y = clamp_sample_coord(y, dims_.y - 1);
    z = clamp_sample_coord(z, dims_.z - 1);
    int i0 = static_cast<int>(std::floor(x));
    int j0 = static_cast<int>(std::floor(y));
    int k0 = static_cast<int>(std::floor(z));
    double fx = x - i0, fy = y - j0, fz = z - k0;
    double c000 = static_cast<double>(clamped(i0, j0, k0));
    double c100 = static_cast<double>(clamped(i0 + 1, j0, k0));
    double c010 = static_cast<double>(clamped(i0, j0 + 1, k0));
    double c110 = static_cast<double>(clamped(i0 + 1, j0 + 1, k0));
    double c001 = static_cast<double>(clamped(i0, j0, k0 + 1));
    double c101 = static_cast<double>(clamped(i0 + 1, j0, k0 + 1));
    double c011 = static_cast<double>(clamped(i0, j0 + 1, k0 + 1));
    double c111 = static_cast<double>(clamped(i0 + 1, j0 + 1, k0 + 1));
    double c00 = lerp(c000, c100, fx);
    double c10 = lerp(c010, c110, fx);
    double c01 = lerp(c001, c101, fx);
    double c11 = lerp(c011, c111, fx);
    return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
  }

  /// Trilinear sample at a point given in voxel coordinates.
  IFET_HOT double sample(const Vec3& p) const { return sample(p.x, p.y, p.z); }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  // NaN-safe clamp of a sample coordinate into [0, max_index] (the !>=
  // test is true for NaN, which std::clamp would pass through).
  static double clamp_sample_coord(double v, int max_index) {
    if (!(v >= 0.0)) return 0.0;
    const double m = static_cast<double>(max_index);
    return v > m ? m : v;
  }

  Dims dims_{};
  std::vector<T> data_;
};

using VolumeF = Volume<float>;
using VolumeU8 = Volume<std::uint8_t>;
/// Binary voxel mask; uint8_t rather than vector<bool> so it is addressable
/// and thread-safe to write disjoint elements.
using Mask = Volume<std::uint8_t>;

/// Number of set voxels in a mask.
std::size_t mask_count(const Mask& mask);

/// Elementwise logical ops on same-sized masks.
Mask mask_and(const Mask& a, const Mask& b);
Mask mask_or(const Mask& a, const Mask& b);
Mask mask_subtract(const Mask& a, const Mask& b);

}  // namespace ifet
