// Sec 7 future-work reproduction: compressed streaming vs raw volume I/O.
//
// "a more interesting and helpful capability is fast data decompression ...
// since one potential bottleneck for large data sets is the need to
// transmit data between the disk and the video memory."
// We stream argon-bubble steps from disk both ways and measure bytes moved
// and end-to-end step latency; the quantized+RLE format moves a fraction
// of the bytes at a bounded reconstruction error.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "flowsim/datasets.hpp"
#include "io/compressed.hpp"
#include "io/volume_io.hpp"
#include "stream/volume_store.hpp"

namespace {

using namespace ifet;

struct IoFixture {
  IoFixture() {
    ArgonBubbleConfig cfg;
    cfg.dims = Dims{64, 64, 64};
    cfg.num_steps = 8;
    ArgonBubbleSource source(cfg);
    raw_paths.reserve(8);
    for (int s = 0; s < 8; ++s) {
      VolumeF v = source.generate(s);
      std::string path = "/tmp/ifet_bench_raw_" + std::to_string(s) + ".vol";
      write_vol(v, path);
      raw_paths.push_back(path);
      raw_bytes += v.size() * sizeof(float);
    }
    compressed_path = "/tmp/ifet_bench_seq.cvol";
    write_compressed_sequence(source, compressed_path);
    reader = std::make_shared<CompressedFileSource>(compressed_path);
    compressed_bytes = reader->total_payload_bytes();
  }

  ~IoFixture() {
    for (const auto& p : raw_paths) std::remove(p.c_str());
    std::remove(compressed_path.c_str());
  }

  std::vector<std::string> raw_paths;
  std::string compressed_path;
  std::shared_ptr<CompressedFileSource> reader;
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
};

IoFixture& fixture() {
  static IoFixture f;
  return f;
}

void BM_ReadRawStep(benchmark::State& state) {
  IoFixture& f = fixture();
  int s = 0;
  for (auto _ : state) {
    VolumeF v = read_vol(f.raw_paths[static_cast<std::size_t>(s)]);
    benchmark::DoNotOptimize(v.data().data());
    s = (s + 1) % 8;
  }
  state.counters["bytes_per_step"] =
      static_cast<double>(f.raw_bytes) / 8.0;
}
BENCHMARK(BM_ReadRawStep)->Unit(benchmark::kMillisecond);

void BM_ReadCompressedStep(benchmark::State& state) {
  IoFixture& f = fixture();
  int s = 0;
  for (auto _ : state) {
    VolumeF v = f.reader->generate(s);
    benchmark::DoNotOptimize(v.data().data());
    s = (s + 1) % 8;
  }
  state.counters["bytes_per_step"] =
      static_cast<double>(f.compressed_bytes) / 8.0;
  state.counters["compression_x"] =
      static_cast<double>(f.raw_bytes) /
      static_cast<double>(f.compressed_bytes);
}
BENCHMARK(BM_ReadCompressedStep)->Unit(benchmark::kMillisecond);

void BM_CompressStep(benchmark::State& state) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{64, 64, 64};
  cfg.num_steps = 8;
  ArgonBubbleSource source(cfg);
  VolumeF v = source.generate(4);
  for (auto _ : state) {
    CompressedVolume c = compress_volume(v);
    benchmark::DoNotOptimize(c.payload.data());
  }
}
BENCHMARK(BM_CompressStep)->Unit(benchmark::kMillisecond);

// Sequential scan through the byte-budgeted VolumeStore: steps decode
// ahead of the consumer on the thread pool, so the per-step latency the
// caller sees is the cache-hit path most of the time.
void BM_StreamedStep(benchmark::State& state) {
  IoFixture& f = fixture();
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 3 * 64 * 64 * 64 * sizeof(float);  // 3 of 8 steps
  cfg.lookahead = 2;
  VolumeStore store(f.reader, cfg);
  int s = 0;
  for (auto _ : state) {
    auto v = store.fetch(s);
    benchmark::DoNotOptimize(v->data().data());
    s = (s + 1) % 8;
  }
  const StreamStats stats = store.stats();
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["prefetch_hit_rate"] = stats.prefetch_hit_rate();
}
BENCHMARK(BM_StreamedStep)->Unit(benchmark::kMillisecond);

void BM_DecompressStep(benchmark::State& state) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{64, 64, 64};
  cfg.num_steps = 8;
  ArgonBubbleSource source(cfg);
  CompressedVolume c = compress_volume(source.generate(4));
  for (auto _ : state) {
    VolumeF v = decompress_volume(c);
    benchmark::DoNotOptimize(v.data().data());
  }
}
BENCHMARK(BM_DecompressStep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
