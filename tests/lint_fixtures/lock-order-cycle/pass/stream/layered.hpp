// Fixture (should PASS): one-directional acquisition with strictly
// increasing ranks; the lambda posted under the lock runs later, so its
// own re-acquisition is not a held-context call.
#pragma once
#include <mutex>

enum class MutexRank : int { kOwner = 10, kWorker = 20 };

class Worker {
 public:
  void kick();
  void done();

 private:
  OrderedMutex mutex_{MutexRank::kWorker};
};

class Owner {
 public:
  void run();

 private:
  OrderedMutex mutex_{MutexRank::kOwner};
  Worker* worker_;
};
