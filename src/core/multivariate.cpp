#include "core/multivariate.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {

int MultivariateSpec::width() const {
  int per_variable = 0;
  if (use_value) ++per_variable;
  if (use_shell) per_variable += shell_samples;
  int n = num_variables * per_variable;
  if (use_position) n += 3;
  if (use_time) ++n;
  return n;
}

std::vector<double> assemble_multivariate_vector(
    const MultivariateSpec& spec, const MultiFeatureContext& context, int i,
    int j, int k) {
  IFET_REQUIRE(static_cast<int>(context.variables.size()) ==
                       spec.num_variables &&
                   context.ranges.size() == context.variables.size(),
               "assemble_multivariate_vector: variable count mismatch");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(spec.width()));
  const auto dirs =
      spec.use_shell ? shell_directions(spec.shell_samples)
                     : std::vector<Vec3>{};
  for (int v = 0; v < spec.num_variables; ++v) {
    const VolumeF& field = *context.variables[static_cast<std::size_t>(v)];
    auto [lo, hi] = context.ranges[static_cast<std::size_t>(v)];
    const double span = std::max(1e-12, hi - lo);
    auto norm = [&](double raw) {
      return clamp((raw - lo) / span, 0.0, 1.0);
    };
    if (spec.use_value) out.push_back(norm(field.clamped(i, j, k)));
    if (spec.use_shell) {
      for (const Vec3& dir : dirs) {
        out.push_back(norm(field.sample(i + spec.shell_radius * dir.x,
                                        j + spec.shell_radius * dir.y,
                                        k + spec.shell_radius * dir.z)));
      }
    }
  }
  const Dims d = context.variables.front()->dims();
  if (spec.use_position) {
    out.push_back(static_cast<double>(i) / std::max(1, d.x - 1));
    out.push_back(static_cast<double>(j) / std::max(1, d.y - 1));
    out.push_back(static_cast<double>(k) / std::max(1, d.z - 1));
  }
  if (spec.use_time) {
    out.push_back(static_cast<double>(context.step) /
                  std::max(1, context.num_steps - 1));
  }
  return out;
}

MultivariateClassifier::MultivariateClassifier(
    int num_steps, std::vector<std::pair<double, double>> ranges,
    const MultivariateConfig& config)
    : config_(config),
      num_steps_(num_steps),
      ranges_(std::move(ranges)),
      network_(),
      trainer_(network_, config.backprop, config.seed ^ 0x2468ULL) {
  IFET_REQUIRE(num_steps_ > 0, "MultivariateClassifier: need steps");
  IFET_REQUIRE(static_cast<int>(ranges_.size()) ==
                   config_.spec.num_variables,
               "MultivariateClassifier: one range per variable required");
  for (auto [lo, hi] : ranges_) {
    IFET_REQUIRE(hi > lo, "MultivariateClassifier: degenerate range");
  }
  Rng rng(config_.seed);
  network_ = Mlp({config_.spec.width(), config_.hidden_units, 1}, rng);
}

MultiFeatureContext MultivariateClassifier::context_for(
    const std::vector<const VolumeF*>& variables, int step) const {
  IFET_REQUIRE(static_cast<int>(variables.size()) ==
                   config_.spec.num_variables,
               "MultivariateClassifier: wrong variable count");
  const Dims d = variables.front()->dims();
  for (const VolumeF* field : variables) {
    IFET_REQUIRE(field != nullptr && field->dims() == d,
                 "MultivariateClassifier: variables must be aligned");
  }
  return MultiFeatureContext{variables, ranges_, step, num_steps_};
}

void MultivariateClassifier::add_samples(
    const std::vector<const VolumeF*>& variables, int step,
    const std::vector<PaintedVoxel>& painted) {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "MultivariateClassifier: step out of range");
  MultiFeatureContext ctx = context_for(variables, step);
  for (const PaintedVoxel& p : painted) {
    IFET_REQUIRE(variables.front()->dims().contains(p.voxel),
                 "MultivariateClassifier: painted voxel out of range");
    training_set_.add(assemble_multivariate_vector(config_.spec, ctx,
                                                   p.voxel.x, p.voxel.y,
                                                   p.voxel.z),
                      {p.certainty});
  }
}

double MultivariateClassifier::train(int epochs) {
  IFET_REQUIRE(!training_set_.empty(),
               "MultivariateClassifier::train: paint samples first");
  return trainer_.run_epochs(training_set_, epochs);
}

double MultivariateClassifier::classify_voxel(
    const std::vector<const VolumeF*>& variables, int step, int i, int j,
    int k) const {
  MultiFeatureContext ctx = context_for(variables, step);
  return network_.forward_scalar(
      assemble_multivariate_vector(config_.spec, ctx, i, j, k));
}

VolumeF MultivariateClassifier::classify(
    const std::vector<const VolumeF*>& variables, int step) const {
  MultiFeatureContext ctx = context_for(variables, step);
  const Dims d = variables.front()->dims();
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        out[out.linear_index(i, j, k)] =
            static_cast<float>(network_.forward_scalar(
                assemble_multivariate_vector(config_.spec, ctx, i, j, k)));
      }
    }
  });
  return out;
}

Mask MultivariateClassifier::classify_mask(
    const std::vector<const VolumeF*>& variables, int step,
    double cut) const {
  VolumeF certainty = classify(variables, step);
  Mask out(certainty.dims());
  for (std::size_t i = 0; i < certainty.size(); ++i) {
    out[i] = certainty[i] >= cut ? 1 : 0;
  }
  return out;
}

}  // namespace ifet
