file(REMOVE_RECURSE
  "CMakeFiles/ifet_core.dir/batch.cpp.o"
  "CMakeFiles/ifet_core.dir/batch.cpp.o.d"
  "CMakeFiles/ifet_core.dir/dataspace.cpp.o"
  "CMakeFiles/ifet_core.dir/dataspace.cpp.o.d"
  "CMakeFiles/ifet_core.dir/feature_vector.cpp.o"
  "CMakeFiles/ifet_core.dir/feature_vector.cpp.o.d"
  "CMakeFiles/ifet_core.dir/iatf.cpp.o"
  "CMakeFiles/ifet_core.dir/iatf.cpp.o.d"
  "CMakeFiles/ifet_core.dir/keyframe_advisor.cpp.o"
  "CMakeFiles/ifet_core.dir/keyframe_advisor.cpp.o.d"
  "CMakeFiles/ifet_core.dir/multiclass.cpp.o"
  "CMakeFiles/ifet_core.dir/multiclass.cpp.o.d"
  "CMakeFiles/ifet_core.dir/multivariate.cpp.o"
  "CMakeFiles/ifet_core.dir/multivariate.cpp.o.d"
  "CMakeFiles/ifet_core.dir/predictive_tracker.cpp.o"
  "CMakeFiles/ifet_core.dir/predictive_tracker.cpp.o.d"
  "CMakeFiles/ifet_core.dir/track_events.cpp.o"
  "CMakeFiles/ifet_core.dir/track_events.cpp.o.d"
  "CMakeFiles/ifet_core.dir/tracking.cpp.o"
  "CMakeFiles/ifet_core.dir/tracking.cpp.o.d"
  "libifet_core.a"
  "libifet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
