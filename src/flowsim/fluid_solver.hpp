// Incompressible 3D flow solver (stable-fluids scheme).
//
// The paper's Fig 5 case study uses a Sandia DNS of a turbulent reacting
// plane jet whose *vorticity magnitude* grows in range as turbulence
// develops. We cannot ship that proprietary data, so this solver is the
// substitute substrate (DESIGN.md Sec 2): a semi-Lagrangian advection /
// diffusion / pressure-projection integrator (Stam, "Stable Fluids") with
// vorticity confinement to keep small-scale rotation alive on coarse grids,
// plus passive scalar transport for the fuel field. From its velocity field
// we derive the same diagnostic the paper visualizes: |curl u|.
//
// The solver is unconditionally stable, deterministic, and single-threaded
// per step (steps are short on the bench grids); per-voxel derivation of
// vorticity magnitude uses the thread pool.
#pragma once

#include <functional>

#include "math/vec.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct FluidConfig {
  Dims dims{32, 32, 32};
  double dt = 0.4;                  ///< Time step.
  double viscosity = 1e-4;          ///< Momentum diffusion coefficient.
  double scalar_diffusion = 1e-5;   ///< Passive scalar diffusion.
  double vorticity_confinement = 0.25;  ///< Epsilon of the confinement force.
  int diffusion_iterations = 12;    ///< Gauss–Seidel sweeps for diffusion.
  int pressure_iterations = 30;     ///< Gauss–Seidel sweeps for projection.
};

class FluidSolver {
 public:
  explicit FluidSolver(const FluidConfig& config);

  const FluidConfig& config() const { return config_; }
  Dims dims() const { return config_.dims; }

  /// Velocity accessors (collocated grid, one component volume each).
  const VolumeF& u() const { return u_; }
  const VolumeF& v() const { return v_; }
  const VolumeF& w() const { return w_; }
  const VolumeF& scalar() const { return scalar_; }

  /// Impose a velocity/scalar source before each step; the callback may
  /// write into the mutable fields (used to drive inflows).
  using ForcingFn =
      std::function<void(VolumeF& u, VolumeF& v, VolumeF& w, VolumeF& scalar)>;

  /// Advance one time step: forcing, confinement, diffusion, advection,
  /// projection (velocity made divergence-free), scalar transport.
  void step(const ForcingFn& forcing = nullptr);

  /// Number of completed steps.
  int steps_completed() const { return steps_; }

  /// Vorticity vector at a voxel (central differences of velocity).
  Vec3 vorticity_at(int i, int j, int k) const;

  /// |curl u| over the whole grid — the Fig 5 diagnostic.
  VolumeF vorticity_magnitude() const;

  /// Maximum divergence magnitude after the last projection (diagnostic;
  /// tests assert the projection actually reduces it).
  double max_divergence() const;

 private:
  void diffuse(VolumeF& field, double coeff);
  void advect(VolumeF& out, const VolumeF& field, const VolumeF& u,
              const VolumeF& v, const VolumeF& w) const;
  void project();
  void confine_vorticity();

  FluidConfig config_;
  VolumeF u_, v_, w_;
  VolumeF scalar_;
  int steps_ = 0;
};

}  // namespace ifet
