# Empty dependencies file for stress_classifier_test.
# This may be replaced when dependencies are built.
