#include "core/dataspace.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {

DataSpaceClassifier::DataSpaceClassifier(int num_steps, double value_lo,
                                         double value_hi,
                                         const DataSpaceConfig& config)
    : config_(config),
      num_steps_(num_steps),
      value_lo_(value_lo),
      value_hi_(value_hi),
      network_(),
      trainer_(network_, config.backprop, config.seed ^ 0xabcdULL) {
  IFET_REQUIRE(num_steps_ > 0, "DataSpaceClassifier: need at least one step");
  IFET_REQUIRE(value_hi_ > value_lo_,
               "DataSpaceClassifier: degenerate value range");
  Rng rng(config_.seed);
  network_ = Mlp({config_.spec.width(), config_.hidden_units, 1}, rng);
}

FeatureContext DataSpaceClassifier::context_for(const VolumeF& volume,
                                                int step) const {
  FeatureContext ctx;
  ctx.volume = &volume;
  ctx.step = step;
  ctx.num_steps = num_steps_;
  ctx.value_lo = value_lo_;
  ctx.value_hi = value_hi_;
  return ctx;
}

void DataSpaceClassifier::add_samples_impl(
    const VolumeF& volume, int step, const std::vector<PaintedVoxel>& painted,
    const VolumeSequence* sequence) {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "DataSpaceClassifier: step out of range");
  FeatureContext ctx = context_for(volume, step);
  for (const PaintedVoxel& p : painted) {
    IFET_REQUIRE(volume.dims().contains(p.voxel),
                 "DataSpaceClassifier: painted voxel outside the volume");
    IFET_REQUIRE(p.step == step,
                 "DataSpaceClassifier: painted step does not match volume");
    RawSample raw;
    raw.painted = p;
    raw.input = assemble_feature_vector(config_.spec, ctx, p.voxel.x,
                                        p.voxel.y, p.voxel.z);
    training_set_.add(raw.input, {p.certainty});
    raw_samples_.push_back(std::move(raw));
  }
  // Keep the key frame for later re-assembly (one record per step).
  bool seen = false;
  for (const auto& sv : sample_volumes_) {
    if (sv.step == step) {
      seen = true;
      break;
    }
  }
  if (seen) return;
  StepVolume sv;
  sv.step = step;
  sv.sequence = sequence;
  if (sequence == nullptr) sv.volume = volume;
  sample_volumes_.push_back(std::move(sv));
}

void DataSpaceClassifier::add_samples(
    const VolumeF& volume, int step,
    const std::vector<PaintedVoxel>& painted) {
  add_samples_impl(volume, step, painted, nullptr);
}

void DataSpaceClassifier::add_samples(
    const VolumeSequence& sequence, int step,
    const std::vector<PaintedVoxel>& painted) {
  add_samples_impl(sequence.step(step), step, painted, &sequence);
}

void DataSpaceClassifier::rebuild_training_set() {
  training_set_.clear();
  // Group by step so each key frame is fetched once even when it has to be
  // re-read through an out-of-core sequence.
  for (const auto& sv : sample_volumes_) {
    const VolumeF& volume = sv.get();
    FeatureContext ctx = context_for(volume, sv.step);
    for (auto& raw : raw_samples_) {
      if (raw.painted.step != sv.step) continue;
      raw.input =
          assemble_feature_vector(config_.spec, ctx, raw.painted.voxel.x,
                                  raw.painted.voxel.y, raw.painted.voxel.z);
    }
  }
  for (const auto& raw : raw_samples_) {
    training_set_.add(raw.input, {raw.painted.certainty});
  }
}

void DataSpaceClassifier::derive_shell_radius_from_samples(Dims mask_dims) {
  Mask positives(mask_dims);
  bool any = false;
  for (const auto& raw : raw_samples_) {
    if (raw.painted.certainty >= 0.5 &&
        mask_dims.contains(raw.painted.voxel)) {
      positives.at(raw.painted.voxel) = 1;
      any = true;
    }
  }
  if (!any) return;
  config_.spec.shell_radius = derive_shell_radius(positives);
  rebuild_training_set();
}

double DataSpaceClassifier::train(int epochs) {
  IFET_REQUIRE(!training_set_.empty(),
               "DataSpaceClassifier::train: paint samples first");
  return trainer_.run_epochs(training_set_, epochs);
}

double DataSpaceClassifier::train_for(double budget_ms) {
  IFET_REQUIRE(!training_set_.empty(),
               "DataSpaceClassifier::train_for: paint samples first");
  return trainer_.run_for(training_set_, budget_ms);
}

double DataSpaceClassifier::classify_voxel(const VolumeF& volume, int step,
                                           int i, int j, int k) const {
  FeatureContext ctx = context_for(volume, step);
  return network_.forward_scalar(
      assemble_feature_vector(config_.spec, ctx, i, j, k));
}

VolumeF DataSpaceClassifier::classify(const VolumeF& volume, int step) const {
  const Dims d = volume.dims();
  VolumeF out(d);
  const FeatureContext ctx = context_for(volume, step);
  const FeatureBlockAssembler assembler(config_.spec, ctx);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  const int width = assembler.width();
  parallel_for_ranges(
      0, static_cast<std::size_t>(d.z), [&](std::size_t k0, std::size_t k1) {
        // Per-worker batch buffers: allocated once per range and reused for
        // every batch in it — zero heap traffic per voxel.
        FlatMlp::Scratch scratch;
        std::vector<Index3> coords(kClassifyBatchSize);
        std::vector<double> features(
            static_cast<std::size_t>(kClassifyBatchSize) * width);
        std::vector<double> certainty(kClassifyBatchSize);
        int pending = 0;
        // The k,j,i sweep below visits consecutive linear indices (the
        // volume is x-fastest), so each flush writes one contiguous span.
        std::size_t flush_base = out.linear_index(0, 0, static_cast<int>(k0));
        auto flush = [&] {
          if (pending == 0) return;
          // Column-major batch: assembler writes feature columns, the
          // engine reads them in place — no per-tile transpose.
          assembler.assemble_feature_cols(coords.data(), pending,
                                          features.data(), kClassifyBatchSize);
          flat->forward_batch_cols(features.data(), kClassifyBatchSize,
                                   pending, certainty.data(), scratch);
          for (int r = 0; r < pending; ++r) {
            out[flush_base + static_cast<std::size_t>(r)] =
                static_cast<float>(certainty[r]);
          }
          flush_base += static_cast<std::size_t>(pending);
          pending = 0;
        };
        for (int k = static_cast<int>(k0); k < static_cast<int>(k1); ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              coords[pending] = {i, j, k};
              if (++pending == kClassifyBatchSize) flush();
            }
          }
        }
        flush();
      });
  return out;
}

VolumeF DataSpaceClassifier::classify_scalar(const VolumeF& volume,
                                             int step) const {
  const Dims d = volume.dims();
  VolumeF out(d);
  FeatureContext ctx = context_for(volume, step);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        out[out.linear_index(i, j, k)] =
            static_cast<float>(network_.forward_scalar(  // ifet-lint: allow(scalar-forward-in-hot-loop)
                assemble_feature_vector(config_.spec, ctx, i, j, k)));
      }
    }
  });
  return out;
}

VolumeF DataSpaceClassifier::classify(const VolumeSequence& sequence,
                                      int step) const {
  // Overlap the next step's decode with this step's classification — the
  // common access pattern is a forward sweep over the sequence.
  sequence.prefetch_hint(step + 1);
  return classify(sequence.step(step), step);
}

Mask DataSpaceClassifier::classify_mask(const VolumeF& volume, int step,
                                        double cut) const {
  VolumeF certainty = classify(volume, step);
  Mask out(volume.dims());
  for (std::size_t i = 0; i < certainty.size(); ++i) {
    out[i] = certainty[i] >= cut ? 1 : 0;
  }
  return out;
}

Mask DataSpaceClassifier::classify_mask(const VolumeSequence& sequence,
                                        int step, double cut) const {
  sequence.prefetch_hint(step + 1);
  return classify_mask(sequence.step(step), step, cut);
}

std::vector<float> DataSpaceClassifier::classify_slice(const VolumeF& volume,
                                                       int step, int axis,
                                                       int slice) const {
  IFET_REQUIRE(axis >= 0 && axis <= 2, "classify_slice: axis must be 0..2");
  const Dims d = volume.dims();
  const FeatureContext ctx = context_for(volume, step);
  int width = 0, height = 0, extent = 0;
  switch (axis) {
    case 0: width = d.y; height = d.z; extent = d.x; break;
    case 1: width = d.x; height = d.z; extent = d.y; break;
    default: width = d.x; height = d.y; extent = d.z; break;
  }
  // Validate once, before fanning out: a throw inside a pool worker is the
  // wrong failure path for a caller-supplied argument.
  IFET_REQUIRE(slice >= 0 && slice < extent,
               "classify_slice: slice out of range");
  std::vector<float> out(static_cast<std::size_t>(width) *
                         static_cast<std::size_t>(height));
  const FeatureBlockAssembler assembler(config_.spec, ctx);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  const int feat_width = assembler.width();
  parallel_for_ranges(
      0, static_cast<std::size_t>(height),
      [&](std::size_t row0, std::size_t row1) {
        FlatMlp::Scratch scratch;
        std::vector<Index3> coords(kClassifyBatchSize);
        std::vector<double> features(
            static_cast<std::size_t>(kClassifyBatchSize) * feat_width);
        std::vector<double> certainty(kClassifyBatchSize);
        int pending = 0;
        // Row-major sweep over the slice image: consecutive output indices.
        std::size_t flush_base = row0 * static_cast<std::size_t>(width);
        auto flush = [&] {
          if (pending == 0) return;
          assembler.assemble_feature_cols(coords.data(), pending,
                                          features.data(), kClassifyBatchSize);
          flat->forward_batch_cols(features.data(), kClassifyBatchSize,
                                   pending, certainty.data(), scratch);
          for (int r = 0; r < pending; ++r) {
            out[flush_base + static_cast<std::size_t>(r)] =
                static_cast<float>(certainty[r]);
          }
          flush_base += static_cast<std::size_t>(pending);
          pending = 0;
        };
        for (std::size_t row = row0; row < row1; ++row) {
          for (int col = 0; col < width; ++col) {
            int i = 0, j = 0, k = 0;
            switch (axis) {
              case 0: i = slice; j = col; k = static_cast<int>(row); break;
              case 1: i = col; j = slice; k = static_cast<int>(row); break;
              default: i = col; j = static_cast<int>(row); k = slice; break;
            }
            coords[pending] = {i, j, k};
            if (++pending == kClassifyBatchSize) flush();
          }
        }
        flush();
      });
  return out;
}

std::vector<float> DataSpaceClassifier::classify_slice(
    const VolumeSequence& sequence, int step, int axis, int slice) const {
  return classify_slice(sequence.step(step), step, axis, slice);
}

std::unique_ptr<DataSpaceClassifier> DataSpaceClassifier::with_spec(
    const FeatureVectorSpec& new_spec) const {
  DataSpaceConfig new_config = config_;
  new_config.spec = new_spec;
  auto out = std::make_unique<DataSpaceClassifier>(num_steps_, value_lo_,
                                                   value_hi_, new_config);

  // Build the old-index mapping for components both specs share, by name.
  auto old_names = config_.spec.component_names();
  auto new_names = new_spec.component_names();
  std::vector<int> mapping;
  mapping.reserve(new_names.size());
  for (const auto& name : new_names) {
    auto it = std::find(old_names.begin(), old_names.end(), name);
    mapping.push_back(it == old_names.end()
                          ? -1
                          : static_cast<int>(it - old_names.begin()));
  }
  Rng rng(config_.seed ^ 0x77ULL);
  out->network_ = network_.resized_inputs(mapping, rng);
  return out;
}

}  // namespace ifet
