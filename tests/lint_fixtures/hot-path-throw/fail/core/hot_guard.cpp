// FAIL fixture: an IFET_HOT root reaches a throwing precondition check
// (IFET_REQUIRE throws ifet::Error) through a helper.
#include <stdexcept>

#define IFET_HOT __attribute__((hot))
#define IFET_REQUIRE(expr, message) \
  do {                              \
    if (!(expr)) throw std::runtime_error(message); \
  } while (false)

namespace fixture {

class Sampler {
 public:
  IFET_HOT double sample(int i) const {
    check(i);
    return values_[i];
  }

 private:
  void check(int i) const {
    IFET_REQUIRE(i >= 0 && i < 8, "sample index out of range");
  }

  double values_[8] = {};
};

}  // namespace fixture
