// Batch extraction driver (paper Sec 8).
//
// "Since the processing of each time step is completely independent of
// other time steps, it is feasible and desirable to employ a large PC
// cluster to conduct the final feature extraction and rendering
// concurrently." This is the shared-memory version of that driver: apply a
// per-step extraction function to every step of a sequence, one worker per
// step (each worker generates its own volume so the shared LRU cache is
// bypassed), and collect per-step results in order.
#pragma once

#include <functional>
#include <vector>

#include "io/image_io.hpp"
#include "volume/sequence.hpp"

namespace ifet {

/// Result of processing a single step.
struct BatchStepResult {
  int step = 0;
  std::size_t feature_voxels = 0;  ///< Extracted voxel count.
  double seconds = 0.0;            ///< Wall time for this step.
};

/// Extraction function: produces the feature mask of a step.
using ExtractFn = std::function<Mask(const VolumeF& volume, int step)>;

struct BatchReport {
  std::vector<BatchStepResult> steps;
  double wall_seconds = 0.0;  ///< Total wall time of the batch.
  double cpu_step_seconds = 0.0;  ///< Sum of per-step times.
};

/// Process steps [first, last] (inclusive) of `source` with `extract`.
/// Steps run concurrently on the global thread pool; results are returned
/// sorted by step.
BatchReport run_batch_extraction(const VolumeSource& source, int first,
                                 int last, const ExtractFn& extract);

/// Per-step rendering function: given the step's volume, produce its frame
/// (typically: evaluate the shipped IATF for the step, then ray-cast).
using RenderFn = std::function<ImageRgb8(const VolumeF& volume, int step)>;

struct BatchRenderReport {
  std::vector<ImageRgb8> frames;  ///< Ordered by step.
  double wall_seconds = 0.0;
};

/// Sec 8's full batch: "conduct the final feature extraction and rendering
/// concurrently" — render every step of [first, last] independently.
BatchRenderReport run_batch_render(const VolumeSource& source, int first,
                                   int last, const RenderFn& render);

}  // namespace ifet
