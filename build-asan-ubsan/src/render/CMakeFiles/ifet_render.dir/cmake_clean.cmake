file(REMOVE_RECURSE
  "CMakeFiles/ifet_render.dir/camera.cpp.o"
  "CMakeFiles/ifet_render.dir/camera.cpp.o.d"
  "CMakeFiles/ifet_render.dir/raycaster.cpp.o"
  "CMakeFiles/ifet_render.dir/raycaster.cpp.o.d"
  "libifet_render.a"
  "libifet_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
