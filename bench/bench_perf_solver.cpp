// Substrate performance: the incompressible solver that generates the
// Fig 5 combustion data (DESIGN.md Sec 2 substitution). Step cost must
// scale linearly in voxel count, and the pressure projection — the
// dominant term — linearly in its iteration count, so the data-generation
// budget for any bench configuration is predictable.
#include <benchmark/benchmark.h>

#include "flowsim/fluid_solver.hpp"

namespace {

using namespace ifet;

void BM_SolverStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FluidConfig cfg;
  cfg.dims = Dims{n, n, n};
  FluidSolver solver(cfg);
  auto forcing = [](VolumeF& u, VolumeF&, VolumeF&, VolumeF& s) {
    const Dims d = u.dims();
    u.at(d.x / 2, d.y / 2, d.z / 2) = 2.0f;
    s.at(d.x / 2, d.y / 2, d.z / 2) = 1.0f;
  };
  for (auto _ : state) {
    solver.step(forcing);
  }
  state.counters["voxels_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(cfg.dims.count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SolverStep)->Arg(16)->Arg(24)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_SolverPressureIterations(benchmark::State& state) {
  FluidConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.pressure_iterations = static_cast<int>(state.range(0));
  FluidSolver solver(cfg);
  for (auto _ : state) {
    solver.step();
  }
}
BENCHMARK(BM_SolverPressureIterations)->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_VorticityDerivation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FluidConfig cfg;
  cfg.dims = Dims{n, n, n};
  FluidSolver solver(cfg);
  solver.step();
  for (auto _ : state) {
    VolumeF vort = solver.vorticity_magnitude();
    benchmark::DoNotOptimize(vort.data().data());
  }
}
BENCHMARK(BM_VorticityDerivation)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
