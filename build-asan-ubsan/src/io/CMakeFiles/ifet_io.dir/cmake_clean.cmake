file(REMOVE_RECURSE
  "CMakeFiles/ifet_io.dir/compressed.cpp.o"
  "CMakeFiles/ifet_io.dir/compressed.cpp.o.d"
  "CMakeFiles/ifet_io.dir/image_io.cpp.o"
  "CMakeFiles/ifet_io.dir/image_io.cpp.o.d"
  "CMakeFiles/ifet_io.dir/volume_io.cpp.o"
  "CMakeFiles/ifet_io.dir/volume_io.cpp.o.d"
  "libifet_io.a"
  "libifet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
