file(REMOVE_RECURSE
  "CMakeFiles/ifet_nn.dir/mlp.cpp.o"
  "CMakeFiles/ifet_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/ifet_nn.dir/normalizer.cpp.o"
  "CMakeFiles/ifet_nn.dir/normalizer.cpp.o.d"
  "CMakeFiles/ifet_nn.dir/training.cpp.o"
  "CMakeFiles/ifet_nn.dir/training.cpp.o.d"
  "libifet_nn.a"
  "libifet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
