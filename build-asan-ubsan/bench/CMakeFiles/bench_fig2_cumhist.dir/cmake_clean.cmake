file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cumhist.dir/bench_fig2_cumhist.cpp.o"
  "CMakeFiles/bench_fig2_cumhist.dir/bench_fig2_cumhist.cpp.o.d"
  "bench_fig2_cumhist"
  "bench_fig2_cumhist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cumhist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
