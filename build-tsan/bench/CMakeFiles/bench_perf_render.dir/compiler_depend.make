# Empty compiler generated dependencies file for bench_perf_render.
# This may be replaced when dependencies are built.
