// PASS fixture: the same brick-traversal loop batching through a
// fixed-size caller-owned packet (the RayPacket idiom) — zero heap traffic
// once marching starts, so the hot root reaches no allocation.
#define IFET_HOT __attribute__((hot))

namespace fixture {

struct Packet {
  static constexpr int kLanes = 8;
  double t[kLanes];
};

class BrickMarcher {
 public:
  IFET_HOT double march(int bricks) {
    Packet packet;  // stack scratch, reused for every run
    double total = 0.0;
    for (int b = 0; b < bricks; ++b) {
      total += composite_run(b, packet);
    }
    return total;
  }

 private:
  double composite_run(int brick, Packet& packet) {
    for (int i = 0; i < Packet::kLanes; ++i) {
      packet.t[i] = static_cast<double>(brick * Packet::kLanes + i);
    }
    double sum = 0.0;
    for (double t : packet.t) sum += t;
    return sum;
  }
};

}  // namespace fixture
