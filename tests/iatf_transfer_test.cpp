// The Sec 4.2.3 deployment path: train the IATF on a workstation, ship it,
// and use it on other machines for batch extraction and rendering.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/batch.hpp"
#include "render/raycaster.hpp"
#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

std::shared_ptr<CallbackSource> drift_source(int steps) {
  Dims d{12, 12, 12};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, steps](int step) {
        double off = 0.3 * step / std::max(1, steps - 1);
        VolumeF v(d);
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              bool feature = i >= 4 && i < 8 && j >= 4 && j < 8 && k >= 4 &&
                             k < 8;
              v.at(i, j, k) =
                  static_cast<float>((feature ? 0.4 : 0.1) + off);
            }
          }
        }
        return v;
      });
}

TransferFunction1D band(double lo, double hi) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(lo, hi, 1.0, 0.02);
  return tf;
}

TEST(IatfTransfer, SaveLoadReproducesEveryStepsTf) {
  const int steps = 7;
  CachedSequence seq(drift_source(steps), 8, 256);
  Iatf trained(seq);
  trained.add_key_frame(0, band(0.35, 0.45));
  trained.add_key_frame(6, band(0.65, 0.75));
  trained.train(800);

  std::stringstream stream;
  trained.save(stream);

  // The "remote machine" opens its own sequence over the same data.
  CachedSequence remote_seq(drift_source(steps), 8, 256);
  auto loaded = Iatf::load(stream, remote_seq);
  for (int step = 0; step < steps; ++step) {
    TransferFunction1D a = trained.evaluate(step);
    TransferFunction1D b = loaded->evaluate(step);
    for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
      ASSERT_NEAR(a.opacity_entry(e), b.opacity_entry(e), 1e-12)
          << "step " << step << " entry " << e;
    }
  }
}

TEST(IatfTransfer, LoadedIatfCanContinueTraining) {
  CachedSequence seq(drift_source(5), 8, 256);
  Iatf trained(seq);
  trained.add_key_frame(0, band(0.35, 0.45));
  trained.train(200);
  std::stringstream stream;
  trained.save(stream);
  auto loaded = Iatf::load(stream, seq);
  loaded->add_key_frame(4, band(0.6, 0.7));
  EXPECT_NO_THROW(loaded->train(100));
  EXPECT_EQ(loaded->key_frames().size(), 1u);  // keys are not serialized
}

TEST(IatfTransfer, LoadValidatesCompatibility) {
  CachedSequence seq(drift_source(5), 8, 256);
  Iatf trained(seq);
  trained.add_key_frame(0, band(0.35, 0.45));
  std::stringstream stream;
  trained.save(stream);

  CachedSequence wrong_steps(drift_source(9), 8, 256);
  EXPECT_THROW(Iatf::load(stream, wrong_steps), Error);

  std::stringstream garbage("not-an-iatf 1\n");
  EXPECT_THROW(Iatf::load(garbage, seq), Error);
}

TEST(IatfTransfer, AblatedConfigSurvivesRoundTrip) {
  CachedSequence seq(drift_source(5), 8, 256);
  IatfConfig cfg;
  cfg.use_time = false;
  Iatf trained(seq, cfg);
  trained.add_key_frame(0, band(0.35, 0.45));
  trained.train(100);
  std::stringstream stream;
  trained.save(stream);
  auto loaded = Iatf::load(stream, seq);
  TransferFunction1D a = trained.evaluate(2);
  TransferFunction1D b = loaded->evaluate(2);
  for (int e = 0; e < TransferFunction1D::kEntries; e += 16) {
    EXPECT_NEAR(a.opacity_entry(e), b.opacity_entry(e), 1e-12);
  }
}

TEST(BatchRender, RendersEveryStepWithTheShippedIatf) {
  const int steps = 6;
  auto source = drift_source(steps);
  CachedSequence seq(source, 8, 256);
  Iatf iatf(seq);
  iatf.add_key_frame(0, band(0.35, 0.45));
  iatf.add_key_frame(steps - 1, band(0.6, 0.7));
  iatf.train(600);

  RenderSettings settings;
  settings.width = 24;
  settings.height = 24;
  settings.shading = false;
  Raycaster caster(settings);
  Camera camera(0.5, 0.3, 2.5);
  BatchRenderReport report = run_batch_render(
      *source, 0, steps - 1, [&](const VolumeF& volume, int step) {
        return caster.render(volume, iatf.evaluate(step), ColorMap(),
                             camera);
      });
  ASSERT_EQ(report.frames.size(), static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    const ImageRgb8& frame = report.frames[static_cast<std::size_t>(s)];
    EXPECT_EQ(frame.width, 24);
    int nonblack = 0;
    for (std::uint8_t p : frame.pixels) nonblack += (p != 0);
    EXPECT_GT(nonblack, 0) << "step " << s << " rendered nothing";
  }
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(BatchRender, ValidatesRange) {
  auto source = drift_source(3);
  auto render = [](const VolumeF& v, int) {
    (void)v;
    return ImageRgb8(4, 4);
  };
  EXPECT_THROW(run_batch_render(*source, -1, 2, render), Error);
  EXPECT_THROW(run_batch_render(*source, 0, 3, render), Error);
  EXPECT_THROW(run_batch_render(*source, 2, 1, render), Error);
}

}  // namespace
}  // namespace ifet
