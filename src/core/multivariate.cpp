#include "core/multivariate.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {

int MultivariateSpec::width() const {
  int per_variable = 0;
  if (use_value) ++per_variable;
  if (use_shell) per_variable += shell_samples;
  int n = num_variables * per_variable;
  if (use_position) n += 3;
  if (use_time) ++n;
  return n;
}

std::vector<double> assemble_multivariate_vector(
    const MultivariateSpec& spec, const MultiFeatureContext& context, int i,
    int j, int k) {
  IFET_REQUIRE(static_cast<int>(context.variables.size()) ==
                       spec.num_variables &&
                   context.ranges.size() == context.variables.size(),
               "assemble_multivariate_vector: variable count mismatch");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(spec.width()));
  const auto offsets =
      spec.use_shell ? shell_offsets(spec.shell_radius, spec.shell_samples)
                     : std::vector<Vec3>{};
  for (int v = 0; v < spec.num_variables; ++v) {
    const VolumeF& field = *context.variables[static_cast<std::size_t>(v)];
    auto [lo, hi] = context.ranges[static_cast<std::size_t>(v)];
    const double span = std::max(1e-12, hi - lo);
    auto norm = [&](double raw) {
      return clamp((raw - lo) / span, 0.0, 1.0);
    };
    if (spec.use_value) out.push_back(norm(field.clamped(i, j, k)));
    if (spec.use_shell) {
      for (const Vec3& off : offsets) {
        out.push_back(norm(field.sample(i + off.x, j + off.y, k + off.z)));
      }
    }
  }
  const Dims d = context.variables.front()->dims();
  if (spec.use_position) {
    out.push_back(static_cast<double>(i) / std::max(1, d.x - 1));
    out.push_back(static_cast<double>(j) / std::max(1, d.y - 1));
    out.push_back(static_cast<double>(k) / std::max(1, d.z - 1));
  }
  if (spec.use_time) {
    out.push_back(static_cast<double>(context.step) /
                  std::max(1, context.num_steps - 1));
  }
  return out;
}

MultivariateBlockAssembler::MultivariateBlockAssembler(
    const MultivariateSpec& spec, const MultiFeatureContext& context)
    : spec_(spec), context_(context), width_(spec.width()) {
  IFET_REQUIRE(static_cast<int>(context_.variables.size()) ==
                       spec_.num_variables &&
                   context_.ranges.size() == context_.variables.size(),
               "MultivariateBlockAssembler: variable count mismatch");
  for (const VolumeF* field : context_.variables) {
    IFET_REQUIRE(field != nullptr, "MultivariateBlockAssembler: null field");
  }
  if (spec_.use_shell) {
    // The quantized offsets make voxel + offset exact, so hoisting them is
    // bitwise-neutral against assemble_multivariate_vector.
    shell_dirs_ = shell_offsets(spec_.shell_radius, spec_.shell_samples);
  }
  lo_.reserve(context_.ranges.size());
  span_.reserve(context_.ranges.size());
  for (auto [lo, hi] : context_.ranges) {
    lo_.push_back(lo);
    span_.push_back(std::max(1e-12, hi - lo));
  }
  const Dims d = context_.variables.front()->dims();
  den_x_ = static_cast<double>(std::max(1, d.x - 1));
  den_y_ = static_cast<double>(std::max(1, d.y - 1));
  den_z_ = static_cast<double>(std::max(1, d.z - 1));
  time_value_ = static_cast<double>(context_.step) /
                std::max(1, context_.num_steps - 1);
}

void MultivariateBlockAssembler::assemble_feature_block(const Index3* voxels,
                                                        int count,
                                                        double* out) const {
  IFET_REQUIRE(count == 0 || (voxels != nullptr && out != nullptr),
               "assemble_feature_block: null block buffer");
  for (int v = 0; v < count; ++v) {
    const int i = voxels[v].x;
    const int j = voxels[v].y;
    const int k = voxels[v].z;
    double* row = out + static_cast<std::size_t>(v) * width_;
    for (int var = 0; var < spec_.num_variables; ++var) {
      const VolumeF& field =
          *context_.variables[static_cast<std::size_t>(var)];
      const double lo = lo_[static_cast<std::size_t>(var)];
      const double span = span_[static_cast<std::size_t>(var)];
      if (spec_.use_value) {
        *row++ = clamp((field.clamped(i, j, k) - lo) / span, 0.0, 1.0);
      }
      if (spec_.use_shell) {
        for (const Vec3& off : shell_dirs_) {
          *row++ = clamp(
              (field.sample(i + off.x, j + off.y, k + off.z) - lo) / span,
              0.0, 1.0);
        }
      }
    }
    if (spec_.use_position) {
      *row++ = static_cast<double>(i) / den_x_;
      *row++ = static_cast<double>(j) / den_y_;
      *row++ = static_cast<double>(k) / den_z_;
    }
    if (spec_.use_time) {
      *row++ = time_value_;
    }
  }
}

MultivariateClassifier::MultivariateClassifier(
    int num_steps, std::vector<std::pair<double, double>> ranges,
    const MultivariateConfig& config)
    : config_(config),
      num_steps_(num_steps),
      ranges_(std::move(ranges)),
      network_(),
      trainer_(network_, config.backprop, config.seed ^ 0x2468ULL) {
  IFET_REQUIRE(num_steps_ > 0, "MultivariateClassifier: need steps");
  IFET_REQUIRE(static_cast<int>(ranges_.size()) ==
                   config_.spec.num_variables,
               "MultivariateClassifier: one range per variable required");
  for (auto [lo, hi] : ranges_) {
    IFET_REQUIRE(hi > lo, "MultivariateClassifier: degenerate range");
  }
  Rng rng(config_.seed);
  network_ = Mlp({config_.spec.width(), config_.hidden_units, 1}, rng);
}

MultiFeatureContext MultivariateClassifier::context_for(
    const std::vector<const VolumeF*>& variables, int step) const {
  IFET_REQUIRE(static_cast<int>(variables.size()) ==
                   config_.spec.num_variables,
               "MultivariateClassifier: wrong variable count");
  const Dims d = variables.front()->dims();
  for (const VolumeF* field : variables) {
    IFET_REQUIRE(field != nullptr && field->dims() == d,
                 "MultivariateClassifier: variables must be aligned");
  }
  return MultiFeatureContext{variables, ranges_, step, num_steps_};
}

void MultivariateClassifier::add_samples(
    const std::vector<const VolumeF*>& variables, int step,
    const std::vector<PaintedVoxel>& painted) {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "MultivariateClassifier: step out of range");
  MultiFeatureContext ctx = context_for(variables, step);
  for (const PaintedVoxel& p : painted) {
    IFET_REQUIRE(variables.front()->dims().contains(p.voxel),
                 "MultivariateClassifier: painted voxel out of range");
    training_set_.add(assemble_multivariate_vector(config_.spec, ctx,
                                                   p.voxel.x, p.voxel.y,
                                                   p.voxel.z),
                      {p.certainty});
  }
}

double MultivariateClassifier::train(int epochs) {
  IFET_REQUIRE(!training_set_.empty(),
               "MultivariateClassifier::train: paint samples first");
  return trainer_.run_epochs(training_set_, epochs);
}

double MultivariateClassifier::classify_voxel(
    const std::vector<const VolumeF*>& variables, int step, int i, int j,
    int k) const {
  MultiFeatureContext ctx = context_for(variables, step);
  return network_.forward_scalar(
      assemble_multivariate_vector(config_.spec, ctx, i, j, k));
}

VolumeF MultivariateClassifier::classify(
    const std::vector<const VolumeF*>& variables, int step) const {
  const MultiFeatureContext ctx = context_for(variables, step);
  const Dims d = variables.front()->dims();
  VolumeF out(d);
  const MultivariateBlockAssembler assembler(config_.spec, ctx);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  const int width = assembler.width();
  constexpr int kBatch = DataSpaceClassifier::kClassifyBatchSize;
  parallel_for_ranges(
      0, static_cast<std::size_t>(d.z), [&](std::size_t k0, std::size_t k1) {
        // Per-worker batch buffers; the x-fastest sweep makes each flush a
        // contiguous span of linear indices (see DataSpaceClassifier).
        FlatMlp::Scratch scratch;
        std::vector<Index3> coords(kBatch);
        std::vector<double> features(static_cast<std::size_t>(kBatch) * width);
        std::vector<double> certainty(kBatch);
        int pending = 0;
        std::size_t flush_base = out.linear_index(0, 0, static_cast<int>(k0));
        auto flush = [&] {
          if (pending == 0) return;
          assembler.assemble_feature_block(coords.data(), pending,
                                           features.data());
          flat->forward_batch(features.data(), pending, certainty.data(),
                              scratch);
          for (int r = 0; r < pending; ++r) {
            out[flush_base + static_cast<std::size_t>(r)] =
                static_cast<float>(certainty[r]);
          }
          flush_base += static_cast<std::size_t>(pending);
          pending = 0;
        };
        for (int k = static_cast<int>(k0); k < static_cast<int>(k1); ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              coords[pending] = {i, j, k};
              if (++pending == kBatch) flush();
            }
          }
        }
        flush();
      });
  return out;
}

Mask MultivariateClassifier::classify_mask(
    const std::vector<const VolumeF*>& variables, int step,
    double cut) const {
  VolumeF certainty = classify(variables, step);
  Mask out(certainty.dims());
  for (std::size_t i = 0; i < certainty.size(); ++i) {
    out[i] = certainty[i] >= cut ? 1 : 0;
  }
  return out;
}

}  // namespace ifet
