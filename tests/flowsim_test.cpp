#include <gtest/gtest.h>

#include <cmath>

#include "flowsim/datasets.hpp"
#include "flowsim/fluid_solver.hpp"
#include "flowsim/noise.hpp"
#include "util/error.hpp"
#include "volume/components.hpp"
#include "volume/ops.hpp"

namespace ifet {
namespace {

TEST(ValueNoise, DeterministicAndBounded) {
  ValueNoise n(42);
  for (int t = 0; t < 200; ++t) {
    double x = t * 0.37, y = t * 0.11, z = t * 0.23;
    double a = n.at(x, y, z);
    double b = n.at(x, y, z);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GE(a, -1.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(ValueNoise, DifferentSeedsDiffer) {
  ValueNoise a(1), b(2);
  double diff = 0.0;
  for (int t = 0; t < 50; ++t) {
    diff += std::fabs(a.at(t * 0.3, 0.5, 0.7) - b.at(t * 0.3, 0.5, 0.7));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(ValueNoise, SmoothBetweenLatticePoints) {
  ValueNoise n(7);
  // Nearby points must produce nearby values (trilinear continuity).
  double prev = n.at(0.0, 0.5, 0.5);
  for (int s = 1; s <= 100; ++s) {
    double cur = n.at(s * 0.01, 0.5, 0.5);
    EXPECT_LT(std::fabs(cur - prev), 0.2);
    prev = cur;
  }
}

TEST(ValueNoise, FbmBounded) {
  ValueNoise n(9);
  for (int t = 0; t < 100; ++t) {
    double v = n.fbm(t * 0.17, t * 0.29, t * 0.05, 4);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FluidSolver, RejectsTinyGrids) {
  FluidConfig cfg;
  cfg.dims = Dims{2, 8, 8};
  EXPECT_THROW(FluidSolver solver(cfg), Error);
}

TEST(FluidSolver, ProjectionReducesDivergence) {
  FluidConfig cfg;
  cfg.dims = Dims{16, 16, 16};
  cfg.pressure_iterations = 60;
  FluidSolver solver(cfg);
  // One forced step with a strongly divergent injection.
  solver.step([](VolumeF& u, VolumeF& v, VolumeF& w, VolumeF&) {
    for (int k = 6; k < 10; ++k) {
      for (int j = 6; j < 10; ++j) {
        for (int i = 6; i < 10; ++i) {
          u.at(i, j, k) = static_cast<float>(i - 8);
          v.at(i, j, k) = static_cast<float>(j - 8);
          w.at(i, j, k) = static_cast<float>(k - 8);
        }
      }
    }
  });
  // The source field has divergence ~3; after projection it must be far
  // smaller.
  EXPECT_LT(solver.max_divergence(), 0.5);
}

TEST(FluidSolver, ScalarStaysBounded) {
  FluidConfig cfg;
  cfg.dims = Dims{12, 12, 12};
  FluidSolver solver(cfg);
  auto forcing = [](VolumeF& u, VolumeF&, VolumeF&, VolumeF& s) {
    s.at(6, 6, 6) = 1.0f;
    u.at(6, 6, 6) = 2.0f;
  };
  for (int t = 0; t < 10; ++t) solver.step(forcing);
  auto [lo, hi] = value_range(solver.scalar());
  // Semi-Lagrangian advection cannot create new extrema.
  EXPECT_GE(lo, -1e-4f);
  EXPECT_LE(hi, 1.0f + 1e-4f);
}

TEST(FluidSolver, StepCounterAdvances) {
  FluidConfig cfg;
  cfg.dims = Dims{8, 8, 8};
  FluidSolver solver(cfg);
  EXPECT_EQ(solver.steps_completed(), 0);
  solver.step();
  solver.step();
  EXPECT_EQ(solver.steps_completed(), 2);
}

TEST(FluidSolver, VorticityOfShearFlow) {
  FluidConfig cfg;
  cfg.dims = Dims{12, 12, 12};
  FluidSolver solver(cfg);
  // Impose u = y (a pure shear): curl = (0, 0, -du/dy) = (0,0,-1).
  solver.step([](VolumeF& u, VolumeF&, VolumeF&, VolumeF&) {
    const Dims d = u.dims();
    for (int k = 0; k < d.z; ++k) {
      for (int j = 0; j < d.y; ++j) {
        for (int i = 0; i < d.x; ++i) {
          u.at(i, j, k) = static_cast<float>(j);
        }
      }
    }
  });
  // After the step the shear has been diffused/advected/projected but its
  // rotation is still present: vorticity magnitude is finite and nonzero.
  VolumeF mag = solver.vorticity_magnitude();
  auto [lo, hi] = value_range(mag);
  EXPECT_GE(lo, 0.0f);
  EXPECT_GT(hi, 0.1f);
}

TEST(ArgonBubble, DeterministicGeneration) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.num_steps = 300;
  ArgonBubbleSource src(cfg);
  VolumeF a = src.generate(200);
  VolumeF b = src.generate(200);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(ArgonBubble, ValuesWithinDeclaredRange) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.num_steps = 300;
  ArgonBubbleSource src(cfg);
  auto [lo, hi] = src.value_range();
  for (int step : {0, 150, 299}) {
    auto [vlo, vhi] = value_range(src.generate(step));
    EXPECT_GE(vlo, lo);
    EXPECT_LE(vhi, hi);
  }
}

TEST(ArgonBubble, RingMaskIsATorus) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 300;
  ArgonBubbleSource src(cfg);
  Mask ring = src.feature_mask(100);
  EXPECT_GT(mask_count(ring), 100u);
  // A torus is one connected component with an empty center.
  Labeling lab = label_components(ring);
  EXPECT_EQ(lab.components.size(), 1u);
  // Center of the volume is inside the hole, not in the ring.
  EXPECT_EQ(ring.at(16, 16, ring.dims().z / 2), 0);
}

TEST(ArgonBubble, RingBandDriftsOverTime) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{16, 16, 16};
  cfg.num_steps = 360;
  ArgonBubbleSource src(cfg);
  double c0 = src.ring_band_center(0);
  double c300 = src.ring_band_center(300);
  EXPECT_GT(std::fabs(c300 - c0), 0.1);  // raw band moves substantially
}

TEST(ArgonBubble, RingValuesMatchAnalyticBand) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 300;
  ArgonBubbleSource src(cfg);
  const int step = 150;
  VolumeF vol = src.generate(step);
  Mask ring = src.feature_mask(step);
  const double center = src.ring_band_center(step);
  const double half = src.ring_band_half_width();
  std::size_t in_band = 0, total = 0;
  for (std::size_t i = 0; i < vol.size(); ++i) {
    if (!ring[i]) continue;
    ++total;
    if (std::fabs(vol[i] - center) <= half * 1.5) ++in_band;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(in_band) / total, 0.9);
}

TEST(CombustionJet, VorticityRangeGrows) {
  CombustionJetConfig cfg;
  cfg.dims = Dims{16, 24, 12};
  cfg.num_steps = 10;
  cfg.solver_steps_per_snapshot = 3;
  CombustionJetSource src(cfg);
  // The paper's Fig 5 premise: later steps reach higher vorticity.
  EXPECT_GT(src.max_vorticity(9), src.max_vorticity(0) * 1.2);
  EXPECT_GT(src.feature_threshold(9), src.feature_threshold(0));
}

TEST(CombustionJet, FeatureMaskMatchesQuantile) {
  CombustionJetConfig cfg;
  cfg.dims = Dims{16, 24, 12};
  cfg.num_steps = 4;
  cfg.solver_steps_per_snapshot = 2;
  cfg.feature_fraction = 0.05;
  CombustionJetSource src(cfg);
  for (int step : {0, 3}) {
    Mask m = src.feature_mask(step);
    double fraction =
        static_cast<double>(mask_count(m)) / static_cast<double>(m.size());
    EXPECT_NEAR(fraction, 0.05, 0.02) << "step " << step;
  }
}

TEST(Reionization, MasksAreDisjoint) {
  ReionizationConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource src(cfg);
  Mask large = src.large_mask(310);
  Mask small = src.small_mask(310);
  EXPECT_GT(mask_count(large), 0u);
  EXPECT_GT(mask_count(small), 0u);
  EXPECT_EQ(mask_count(mask_and(large, small)), 0u);
}

TEST(Reionization, SmallFeatureValuesOverlapLargeOnes) {
  // The Fig 7 premise: value alone cannot separate small from large.
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  ReionizationSource src(cfg);
  const int step = 310;
  VolumeF vol = src.generate(step);
  Mask large = src.large_mask(step);
  Mask small = src.small_mask(step);
  double large_max = 0.0, small_max = 0.0;
  for (std::size_t i = 0; i < vol.size(); ++i) {
    if (large[i]) large_max = std::max(large_max, (double)vol[i]);
    if (small[i]) small_max = std::max(small_max, (double)vol[i]);
  }
  // Peak small-feature values reach well into the large-structure band.
  EXPECT_GT(small_max, 0.5 * large_max);
}

TEST(Reionization, SmallFeaturesAreNumerousAndTiny) {
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 100;
  ReionizationSource src(cfg);
  Labeling lab = label_components(src.small_mask(310));
  EXPECT_GT(lab.components.size(), 20u);
  for (const auto& c : lab.components) {
    EXPECT_LT(c.voxel_count, 100u);
  }
}

TEST(TurbulentVortex, SplitsAtConfiguredStep) {
  TurbulentVortexConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 25;
  cfg.split_step = 18;
  TurbulentVortexSource src(cfg);
  for (int step : {0, 10, 17}) {
    Labeling lab = label_components(src.feature_mask(step));
    EXPECT_EQ(lab.components.size(), 1u) << "step " << step;
    EXPECT_EQ(src.expected_components(step), 1);
  }
  for (int step : {18, 20, 24}) {
    Labeling lab = label_components(src.feature_mask(step));
    EXPECT_EQ(lab.components.size(), 2u) << "step " << step;
    EXPECT_EQ(src.expected_components(step), 2);
  }
}

TEST(TurbulentVortex, ConsecutiveMasksOverlap) {
  // The tracking assumption (paper Sec 5): matching features overlap in 3D
  // between consecutive steps.
  TurbulentVortexConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  TurbulentVortexSource src(cfg);
  for (int step = 0; step + 1 < cfg.num_steps; ++step) {
    Mask a = src.feature_mask(step);
    Mask b = src.feature_mask(step + 1);
    EXPECT_GT(mask_count(mask_and(a, b)), 0u) << "steps " << step;
  }
}

TEST(TurbulentVortex, FeatureMoves) {
  TurbulentVortexConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  TurbulentVortexSource src(cfg);
  Labeling first = label_components(src.feature_mask(0));
  Labeling later = label_components(src.feature_mask(15));
  ASSERT_FALSE(first.components.empty());
  ASSERT_FALSE(later.components.empty());
  Vec3 delta = later.components[0].centroid - first.components[0].centroid;
  EXPECT_GT(delta.norm(), 2.0);  // voxels
}

TEST(SwirlingFlow, PeakDecaysLinearly) {
  SwirlingFlowConfig cfg;
  SwirlingFlowSource src(cfg);
  EXPECT_NEAR(src.peak_value(0), cfg.peak_value0, 1e-12);
  EXPECT_LT(src.peak_value(62), 0.45);
  EXPECT_GT(src.peak_value(62), 0.1);
}

TEST(SwirlingFlow, FeatureExistsAtEveryStep) {
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  SwirlingFlowSource src(cfg);
  for (int step : {0, 23, 41, 62}) {
    EXPECT_GT(mask_count(src.feature_mask(step)), 10u) << "step " << step;
  }
}

TEST(SwirlingFlow, FixedThresholdLosesFeatureOverTime) {
  // Quantifies the Fig 10 top row: a fixed criterion range empties out.
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  SwirlingFlowSource src(cfg);
  auto in_fixed_range = [&](int step) {
    VolumeF v = src.generate(step);
    Mask m = threshold_mask(v, 0.55f, 1.0f);
    return mask_count(m);
  };
  EXPECT_GT(in_fixed_range(0), 0u);
  EXPECT_EQ(in_fixed_range(62), 0u);
}

TEST(SwirlingFlow, ConsecutiveMasksOverlap) {
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  SwirlingFlowSource src(cfg);
  for (int step = 0; step + 1 < cfg.num_steps; step += 5) {
    Mask a = src.feature_mask(step);
    Mask b = src.feature_mask(step + 1);
    EXPECT_GT(mask_count(mask_and(a, b)), 0u);
  }
}


TEST(CombustionJet, FuelFieldBoundedAndPresent) {
  CombustionJetConfig cfg;
  cfg.dims = Dims{16, 24, 12};
  cfg.num_steps = 5;
  cfg.solver_steps_per_snapshot = 2;
  CombustionJetSource src(cfg);
  for (int step : {0, 4}) {
    const VolumeF& fuel = src.fuel_snapshot(step);
    EXPECT_EQ(fuel.dims(), cfg.dims);
    auto [lo, hi] = value_range(fuel);
    // Semi-Lagrangian transport of a [0,1] source stays in [0,1].
    EXPECT_GE(lo, -1e-4f);
    EXPECT_LE(hi, 1.0f + 1e-4f);
    // Fuel has actually entered the domain.
    double total = 0.0;
    for (float v : fuel.data()) total += v;
    EXPECT_GT(total, 1.0);
  }
  EXPECT_THROW(src.fuel_snapshot(5), Error);
}

TEST(CombustionJet, FuelConcentratesInTheJetSlab) {
  CombustionJetConfig cfg;
  cfg.dims = Dims{16, 24, 12};
  cfg.num_steps = 4;
  cfg.solver_steps_per_snapshot = 2;
  CombustionJetSource src(cfg);
  const VolumeF& fuel = src.fuel_snapshot(3);
  const Dims d = cfg.dims;
  double slab = 0.0, edges = 0.0;
  int slab_n = 0, edge_n = 0;
  for (int k = 0; k < d.z; ++k) {
    bool in_slab = std::abs(k - d.z / 2) <= std::max(2, d.z / 6);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        if (in_slab) {
          slab += fuel.at(i, j, k);
          ++slab_n;
        } else {
          edges += fuel.at(i, j, k);
          ++edge_n;
        }
      }
    }
  }
  EXPECT_GT(slab / slab_n, 2.0 * (edges / std::max(1, edge_n)));
}
// Every generator satisfies the VolumeSource contract.
TEST(Sources, AllRespectDimsAndRange) {
  ArgonBubbleConfig acfg;
  acfg.dims = Dims{16, 16, 16};
  acfg.num_steps = 10;
  ArgonBubbleSource argon(acfg);

  ReionizationConfig rcfg;
  rcfg.dims = Dims{16, 16, 16};
  rcfg.num_steps = 10;
  rcfg.num_small_features = 10;
  ReionizationSource reion(rcfg);

  TurbulentVortexConfig tcfg;
  tcfg.dims = Dims{16, 16, 16};
  tcfg.num_steps = 10;
  tcfg.split_step = 5;
  TurbulentVortexSource vortex(tcfg);

  SwirlingFlowConfig scfg;
  scfg.dims = Dims{16, 16, 16};
  scfg.num_steps = 10;
  SwirlingFlowSource swirl(scfg);

  const LabeledSource* sources[] = {&argon, &reion, &vortex, &swirl};
  for (const LabeledSource* src : sources) {
    EXPECT_EQ(src->dims().x, 16);
    auto [lo, hi] = src->value_range();
    VolumeF v = src->generate(5);
    EXPECT_EQ(v.dims(), src->dims());
    auto [vlo, vhi] = value_range(v);
    EXPECT_GE(vlo, lo - 1e-6);
    EXPECT_LE(vhi, hi + 1e-6);
    EXPECT_THROW(src->generate(-1), Error);
    EXPECT_THROW(src->generate(10), Error);
  }
}

}  // namespace
}  // namespace ifet
