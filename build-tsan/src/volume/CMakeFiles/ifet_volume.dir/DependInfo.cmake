
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/volume/components.cpp" "src/volume/CMakeFiles/ifet_volume.dir/components.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/components.cpp.o.d"
  "/root/repo/src/volume/filters.cpp" "src/volume/CMakeFiles/ifet_volume.dir/filters.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/filters.cpp.o.d"
  "/root/repo/src/volume/histogram.cpp" "src/volume/CMakeFiles/ifet_volume.dir/histogram.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/histogram.cpp.o.d"
  "/root/repo/src/volume/histogram2d.cpp" "src/volume/CMakeFiles/ifet_volume.dir/histogram2d.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/histogram2d.cpp.o.d"
  "/root/repo/src/volume/octree.cpp" "src/volume/CMakeFiles/ifet_volume.dir/octree.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/octree.cpp.o.d"
  "/root/repo/src/volume/ops.cpp" "src/volume/CMakeFiles/ifet_volume.dir/ops.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/ops.cpp.o.d"
  "/root/repo/src/volume/resample.cpp" "src/volume/CMakeFiles/ifet_volume.dir/resample.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/resample.cpp.o.d"
  "/root/repo/src/volume/sequence.cpp" "src/volume/CMakeFiles/ifet_volume.dir/sequence.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/sequence.cpp.o.d"
  "/root/repo/src/volume/volume.cpp" "src/volume/CMakeFiles/ifet_volume.dir/volume.cpp.o" "gcc" "src/volume/CMakeFiles/ifet_volume.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
