#include <gtest/gtest.h>

#include <limits>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/ops.hpp"
#include "volume/volume.hpp"

namespace ifet {
namespace {

using testing::box_mask;
using testing::random_volume;

TEST(Volume, ConstructionAndFill) {
  VolumeF v(Dims{4, 5, 6}, 2.5f);
  EXPECT_EQ(v.size(), 120u);
  EXPECT_EQ(v.dims().x, 4);
  for (float x : v.data()) EXPECT_FLOAT_EQ(x, 2.5f);
  v.fill(1.0f);
  EXPECT_FLOAT_EQ(v.at(3, 4, 5), 1.0f);
}

TEST(Volume, RejectsNonPositiveDims) {
  EXPECT_THROW(VolumeF(Dims{0, 4, 4}), Error);
  EXPECT_THROW(VolumeF(Dims{4, -1, 4}), Error);
}

TEST(Volume, LinearIndexRoundTrips) {
  VolumeF v(Dims{5, 7, 3});
  for (int k = 0; k < 3; ++k) {
    for (int j = 0; j < 7; ++j) {
      for (int i = 0; i < 5; ++i) {
        std::size_t li = v.linear_index(i, j, k);
        Index3 c = v.coord_of(li);
        EXPECT_EQ(c.x, i);
        EXPECT_EQ(c.y, j);
        EXPECT_EQ(c.z, k);
      }
    }
  }
}

TEST(Volume, XVariesFastest) {
  VolumeF v(Dims{4, 4, 4});
  EXPECT_EQ(v.linear_index(1, 0, 0), 1u);
  EXPECT_EQ(v.linear_index(0, 1, 0), 4u);
  EXPECT_EQ(v.linear_index(0, 0, 1), 16u);
}

TEST(Volume, AtThrowsOutOfRange) {
  VolumeF v(Dims{4, 4, 4});
  EXPECT_THROW(v.at(4, 0, 0), Error);
  EXPECT_THROW(v.at(-1, 0, 0), Error);
  EXPECT_THROW(v.at(0, 0, 4), Error);
  EXPECT_THROW(v.at(Index3{0, 4, 0}), Error);
  const VolumeF& cv = v;
  EXPECT_THROW(cv.at(4, 0, 0), Error);
  EXPECT_THROW(cv.at(Index3{-1, 0, 0}), Error);
}

#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
// The normally-unchecked fast paths throw under IFET_CHECKED_ITERATORS
// (the asan-ubsan / tsan presets); in release builds they compile out.
TEST(Volume, UncheckedAccessThrowsWhenCheckedIteratorsOn) {
  VolumeF v(Dims{2, 2, 2});
  EXPECT_THROW(v[8], Error);
  EXPECT_THROW(v[static_cast<std::size_t>(-1)], Error);
  const VolumeF& cv = v;
  EXPECT_THROW(cv[8], Error);
  EXPECT_THROW(v.linear_index(2, 0, 0), Error);
  EXPECT_THROW(v.coord_of(8), Error);
  EXPECT_NO_THROW(v[7]);
  EXPECT_NO_THROW(v.coord_of(7));
}
#endif

TEST(Volume, SampleClampsExtremeAndNanCoordinates) {
  VolumeF v(Dims{3, 3, 3}, 1.0f);
  v.at(0, 0, 0) = 5.0f;
  v.at(2, 2, 2) = 9.0f;
  EXPECT_DOUBLE_EQ(v.sample(-1e300, -1e300, -1e300), 5.0);
  EXPECT_DOUBLE_EQ(v.sample(1e300, 1e300, 1e300), 9.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(v.sample(nan, 0.0, 0.0), 5.0);  // NaN clamps to 0
}

TEST(Volume, ClampedExtendsEdges) {
  VolumeF v(Dims{3, 3, 3});
  v.at(0, 1, 1) = 7.0f;
  v.at(2, 1, 1) = 9.0f;
  EXPECT_FLOAT_EQ(v.clamped(-5, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(v.clamped(10, 1, 1), 9.0f);
}

TEST(Volume, SampleExactAtVoxelCenters) {
  VolumeF v = random_volume(Dims{6, 6, 6}, 99);
  for (int k = 0; k < 6; ++k) {
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 6; ++i) {
        EXPECT_NEAR(v.sample(i, j, k), v.at(i, j, k), 1e-6);
      }
    }
  }
}

TEST(Volume, SampleInterpolatesLinearly) {
  VolumeF v(Dims{2, 2, 2});
  v.at(0, 0, 0) = 0.0f;
  v.at(1, 0, 0) = 1.0f;
  v.at(0, 1, 0) = 2.0f;
  v.at(1, 1, 0) = 3.0f;
  v.at(0, 0, 1) = 4.0f;
  v.at(1, 0, 1) = 5.0f;
  v.at(0, 1, 1) = 6.0f;
  v.at(1, 1, 1) = 7.0f;
  EXPECT_NEAR(v.sample(0.5, 0.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(v.sample(0.5, 0.5, 0.5), 3.5, 1e-12);
  EXPECT_NEAR(v.sample(0.0, 0.5, 0.0), 1.0, 1e-12);
}

TEST(Volume, SampleBoundedByLocalExtremes) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 4, -2.0, 3.0);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    double x = rng.uniform(0, 7), y = rng.uniform(0, 7), z = rng.uniform(0, 7);
    double s = v.sample(x, y, z);
    EXPECT_GE(s, -2.0);
    EXPECT_LE(s, 3.0);
  }
}

TEST(MaskOps, CountAndLogicalOps) {
  Dims d{8, 8, 8};
  Mask a = box_mask(d, {0, 0, 0}, {3, 3, 3});
  Mask b = box_mask(d, {2, 2, 2}, {5, 5, 5});
  EXPECT_EQ(mask_count(a), 64u);
  EXPECT_EQ(mask_count(b), 64u);
  EXPECT_EQ(mask_count(mask_and(a, b)), 8u);    // 2x2x2 overlap
  EXPECT_EQ(mask_count(mask_or(a, b)), 120u);   // 64+64-8
  EXPECT_EQ(mask_count(mask_subtract(a, b)), 56u);
}

TEST(MaskOps, DimensionMismatchThrows) {
  Mask a(Dims{4, 4, 4});
  Mask b(Dims{5, 4, 4});
  EXPECT_THROW(mask_and(a, b), Error);
}

TEST(VolumeOps, ValueRange) {
  VolumeF v(Dims{4, 4, 4}, 1.0f);
  v.at(2, 2, 2) = -3.0f;
  v.at(1, 1, 1) = 8.0f;
  auto [lo, hi] = value_range(v);
  EXPECT_FLOAT_EQ(lo, -3.0f);
  EXPECT_FLOAT_EQ(hi, 8.0f);
}

TEST(VolumeOps, NormalizedMapsToUnit) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 3, 5.0, 9.0);
  VolumeF n = normalized(v);
  auto [lo, hi] = value_range(n);
  EXPECT_NEAR(lo, 0.0, 1e-6);
  EXPECT_NEAR(hi, 1.0, 1e-6);
}

TEST(VolumeOps, NormalizedConstantVolumeIsZero) {
  VolumeF v(Dims{4, 4, 4}, 3.0f);
  VolumeF n = normalized(v);
  for (float x : n.data()) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(VolumeOps, GradientOfLinearRamp) {
  VolumeF v(Dims{8, 8, 8});
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) {
        v.at(i, j, k) = static_cast<float>(2.0 * i + 3.0 * j - 1.0 * k);
      }
    }
  }
  Vec3 g = gradient_at(v, 4, 4, 4);
  EXPECT_NEAR(g.x, 2.0, 1e-5);
  EXPECT_NEAR(g.y, 3.0, 1e-5);
  EXPECT_NEAR(g.z, -1.0, 1e-5);
  VolumeF mag = gradient_magnitude(v);
  EXPECT_NEAR(mag.at(4, 4, 4), std::sqrt(4.0 + 9.0 + 1.0), 1e-5);
}

TEST(VolumeOps, ThresholdMask) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 12, 0.0, 1.0);
  Mask m = threshold_mask(v, 0.25f, 0.75f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool inside = v[i] >= 0.25f && v[i] <= 0.75f;
    EXPECT_EQ(m[i] != 0, inside);
  }
}

TEST(VolumeOps, BlendInterpolates) {
  VolumeF a(Dims{4, 4, 4}, 0.0f);
  VolumeF b(Dims{4, 4, 4}, 2.0f);
  VolumeF mid = blend(a, b, 0.25);
  for (float x : mid.data()) EXPECT_FLOAT_EQ(x, 0.5f);
}

TEST(VolumeOps, MeanAbsDifference) {
  VolumeF a(Dims{4, 4, 4}, 1.0f);
  VolumeF b(Dims{4, 4, 4}, 3.5f);
  EXPECT_DOUBLE_EQ(mean_abs_difference(a, b), 2.5);
  EXPECT_DOUBLE_EQ(mean_abs_difference(a, a), 0.0);
}

// Parameterized sweep: linear-index round trip and sampling bounds hold for
// a spread of grid shapes, including degenerate slabs.
class VolumeDimsTest : public ::testing::TestWithParam<Dims> {};

TEST_P(VolumeDimsTest, RoundTripAndSampleBounds) {
  const Dims d = GetParam();
  VolumeF v = random_volume(d, 77, 0.0, 1.0);
  // Round-trip a scatter of linear indices.
  for (std::size_t li = 0; li < v.size(); li += std::max<std::size_t>(1, v.size() / 97)) {
    Index3 c = v.coord_of(li);
    EXPECT_EQ(v.linear_index(c.x, c.y, c.z), li);
  }
  // Sampling anywhere inside stays within the global range.
  Rng rng(21);
  for (int t = 0; t < 64; ++t) {
    double x = rng.uniform(0.0, d.x - 1.0);
    double y = rng.uniform(0.0, d.y - 1.0);
    double z = rng.uniform(0.0, d.z - 1.0);
    double s = v.sample(x, y, z);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, VolumeDimsTest,
                         ::testing::Values(Dims{1, 1, 1}, Dims{8, 8, 8},
                                           Dims{16, 4, 2}, Dims{3, 17, 5},
                                           Dims{32, 2, 9}, Dims{2, 2, 64}));

}  // namespace
}  // namespace ifet
