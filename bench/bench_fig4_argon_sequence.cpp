// Figure 4 reproduction: IATF over the argon-bubble sequence t=195..255
// with three key frames (195, 225, 255).
//
// Paper layout: each static key-frame TF is applied to every step of the
// sequence (rows 1-3; the ring fades/disappears away from the TF's own key
// frame) while the IATF row preserves the ring structure across the whole
// interval. We print ring-extraction F1 per step for each static TF and
// for the IATF.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 4: static key-frame TFs vs IATF across t=195..255 "
               "(argon bubble) ===\n";

  ArgonBubbleConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 360;
  // Same fast-drift regime as Fig 3: "the data range changes significantly
  // over time [so] a transfer function set to visualize an earlier time
  // step is unsuitable for the later time steps".
  cfg.drift_per_step = 0.004;
  auto source = std::make_shared<ArgonBubbleSource>(cfg);
  CachedSequence seq(source, 8, 256);
  auto [vlo, vhi] = seq.value_range();

  auto ring_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    const double c = source->ring_band_center(step);
    const double h = source->ring_band_half_width();
    tf.add_band(c - h, c + h, 1.0, 0.5 * h);
    return tf;
  };

  const std::vector<int> keys = {195, 225, 255};
  Iatf iatf(seq);
  for (int k : keys) iatf.add_key_frame(k, ring_tf(k));
  iatf.train(3000);

  Table table({"t", "tf@195_f1", "tf@225_f1", "tf@255_f1", "iatf_f1"});
  CsvWriter csv(bench::output_dir() + "/fig4_argon_sequence.csv",
                {"t", "tf195", "tf225", "tf255", "iatf"});

  double worst_iatf = 1.0;
  double static_f1_away_sum = 0.0;
  int static_f1_away_count = 0;

  for (int t = 195; t <= 255; t += 5) {
    const VolumeF& volume = seq.step(t);
    Mask truth = source->feature_mask(t);
    std::vector<double> static_f1;
    for (int k : keys) {
      MaskScore s =
          score_mask(bench::tf_extract(volume, ring_tf(k)), truth);
      static_f1.push_back(s.f1());
      if (std::abs(t - k) >= 20) {
        static_f1_away_sum += s.f1();
        ++static_f1_away_count;
      }
    }
    MaskScore iatf_s =
        score_mask(bench::tf_extract(volume, iatf.evaluate(t)), truth);
    worst_iatf = std::min(worst_iatf, iatf_s.f1());
    table.add_row({std::to_string(t), Table::num(static_f1[0]),
                   Table::num(static_f1[1]), Table::num(static_f1[2]),
                   Table::num(iatf_s.f1())});
    csv.row(t, static_f1[0], static_f1[1], static_f1[2], iatf_s.f1());
  }
  table.print(std::cout);

  const double static_away_mean =
      static_f1_away_sum / std::max(1, static_f1_away_count);
  std::cout << "\nworst IATF F1 over the interval:              "
            << worst_iatf
            << "\nmean static-TF F1 >= 20 steps from its key:   "
            << static_away_mean << "\n\n";

  bench::ShapeCheck check;
  check.expect(worst_iatf > 0.5,
               "IATF preserves the ring at every step of the interval");
  check.expect(worst_iatf > static_away_mean,
               "IATF's worst step beats static TFs' typical off-key step");
  return check.exit_code();
}
