# Empty compiler generated dependencies file for ifet_io.
# This may be replaced when dependencies are built.
