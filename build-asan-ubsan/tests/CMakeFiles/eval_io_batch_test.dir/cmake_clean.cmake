file(REMOVE_RECURSE
  "CMakeFiles/eval_io_batch_test.dir/eval_io_batch_test.cpp.o"
  "CMakeFiles/eval_io_batch_test.dir/eval_io_batch_test.cpp.o.d"
  "eval_io_batch_test"
  "eval_io_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_io_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
