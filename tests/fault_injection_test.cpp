// Fault-tolerant streaming (docs/ROBUSTNESS.md): typed IoError taxonomy,
// retry/backoff, quarantine + FailPolicy, and the deterministic
// FaultInjectingSource harness.
//
// The acceptance property lives here: a run where every step fails once
// transiently produces results IDENTICAL to a no-fault run (with
// stats.retries > 0 proving the retries actually happened), and a run
// with one permanently corrupt step finishes cleanly under kSkipStep /
// kNearestGood while kThrow surfaces the CorruptDataError.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "core/iatf.hpp"
#include "math/vec.hpp"
#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "stream/fault_injection.hpp"
#include "stream/streamed_sequence.hpp"
#include "stream/volume_store.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/io_error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{8, 8, 8};
constexpr int kSteps = 6;

/// Blob drifting +x one voxel per step (the stream_test fixture shape):
/// gives IATF and tracking something to find at every step.
std::shared_ptr<CallbackSource> blob_source(int steps = kSteps) {
  const Dims d = kDims;
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d);
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              const double dx = i - (d.x / 4 + step);
              const double dy = j - d.y / 2;
              const double dz = k - d.z / 2;
              const double r2 = dx * dx + dy * dy + dz * dz;
              v.at(i, j, k) =
                  static_cast<float>(clamp(1.0 - r2 / 9.0, 0.0, 1.0));
            }
          }
        }
        return v;
      });
}

/// Bitwise comparison: a flipped voxel can be NaN, and NaN != NaN would
/// make value comparison blind to "identical corruption".
bool volumes_equal(const VolumeF& a, const VolumeF& b) {
  if (!(a.dims() == b.dims())) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Deterministic store config: synchronous lookahead, everything on the
/// calling thread.
VolumeStoreConfig sync_store_config() {
  VolumeStoreConfig c;
  c.lookahead = 1;
  c.async_prefetch = false;
  return c;
}

// ---------------------------------------------------------------------------
// Typed error taxonomy

TEST(IoErrorTaxonomy, DerivesFromIfetError) {
  // Legacy catch (const Error&) sites keep working across the typed
  // migration — the whole point of deriving the taxonomy from Error.
  EXPECT_THROW(throw TransientIoError("x"), IoError);
  EXPECT_THROW(throw TransientIoError("x"), Error);
  EXPECT_THROW(throw CorruptDataError("x"), IoError);
  EXPECT_THROW(throw CorruptDataError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), IoError);
  EXPECT_THROW(throw NotFoundError("x"), Error);
}

// ---------------------------------------------------------------------------
// Fault schedule parsing (the --inject-faults CLI syntax)

TEST(FaultSchedule, ParsesKindStepAndCount) {
  FaultSpec spec = parse_fault_spec("transient@all");
  EXPECT_EQ(spec.kind, FaultKind::kTransient);
  EXPECT_EQ(spec.step, FaultSpec::kAllSteps);
  EXPECT_EQ(spec.count, 1);

  spec = parse_fault_spec("corrupt@7");
  EXPECT_EQ(spec.kind, FaultKind::kCorrupt);
  EXPECT_EQ(spec.step, 7);

  spec = parse_fault_spec("transient@3:2");
  EXPECT_EQ(spec.kind, FaultKind::kTransient);
  EXPECT_EQ(spec.step, 3);
  EXPECT_EQ(spec.count, 2);

  const auto schedule = parse_fault_schedule("transient@all,corrupt@2");
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[1].kind, FaultKind::kCorrupt);
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("transient"), Error);
  EXPECT_THROW(parse_fault_spec("meteor@3"), Error);
  EXPECT_THROW(parse_fault_spec("transient@x"), Error);
  EXPECT_THROW(parse_fault_spec("transient@3:0"), Error);
  EXPECT_THROW(parse_fault_spec("transient@-2"), Error);
  EXPECT_THROW(parse_fault_schedule(""), Error);
}

// ---------------------------------------------------------------------------
// FaultInjectingSource

TEST(FaultInjectingSource, TransientFaultHealsAfterCount) {
  FaultInjectingSource source(blob_source(),
                              {{2, FaultKind::kTransient, 2}});
  EXPECT_NO_THROW(source.generate(1));  // other steps unaffected
  EXPECT_THROW(source.generate(2), TransientIoError);
  EXPECT_THROW(source.generate(2), TransientIoError);
  EXPECT_NO_THROW(source.generate(2));  // healed
  EXPECT_EQ(source.faults_fired(), 2u);
}

TEST(FaultInjectingSource, AllStepsCountIsPerStep) {
  // transient@all:1 = every step fails exactly once — the schedule the
  // fault-equivalence property runs on.
  FaultInjectingSource source(blob_source(),
                              {{FaultSpec::kAllSteps,
                                FaultKind::kTransient, 1}});
  for (int s = 0; s < kSteps; ++s) {
    EXPECT_THROW(source.generate(s), TransientIoError) << "step " << s;
    EXPECT_NO_THROW(source.generate(s)) << "step " << s;
  }
  EXPECT_EQ(source.faults_fired(), static_cast<std::uint64_t>(kSteps));
}

TEST(FaultInjectingSource, CorruptAndNotFoundNeverHeal) {
  FaultInjectingSource source(blob_source(),
                              {{1, FaultKind::kCorrupt, 1},
                               {2, FaultKind::kNotFound, 1}});
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_THROW(source.generate(1), CorruptDataError);
    EXPECT_THROW(source.generate(2), NotFoundError);
  }
}

TEST(FaultInjectingSource, BitFlipIsSilentAndDeterministic) {
  auto inner = blob_source();
  FaultInjectingSource source(inner, {{3, FaultKind::kBitFlip, 1}},
                              /*seed=*/77);
  const VolumeF clean = inner->generate(3);
  const VolumeF flipped_a = source.generate(3);
  const VolumeF flipped_b = source.generate(3);
  EXPECT_FALSE(volumes_equal(clean, flipped_a));  // corrupted...
  EXPECT_TRUE(volumes_equal(flipped_a, flipped_b));  // ...reproducibly
  std::size_t differing = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != flipped_a[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);  // exactly one voxel
}

TEST(FaultInjectingSource, DelayStillProducesCorrectData) {
  auto inner = blob_source();
  FaultInjectingSource source(inner, {{1, FaultKind::kDelay, 1}});
  EXPECT_TRUE(volumes_equal(source.generate(1), inner->generate(1)));
}

// ---------------------------------------------------------------------------
// Retry / backoff (tentpole part 2)

TEST(VolumeStoreRetry, TransientFaultsAreInvisibleWithRetry) {
  // The fault-equivalence property: every step fails once transiently;
  // with max_retries >= 1 every fetched volume is bit-identical to the
  // no-fault run, and the stats prove retries happened.
  auto inner = blob_source();
  auto faulty = std::make_shared<FaultInjectingSource>(
      inner, std::vector<FaultSpec>{{FaultSpec::kAllSteps,
                                     FaultKind::kTransient, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.max_retries = 1;
  VolumeStore clean(inner, config);
  VolumeStore faulted(faulty, config);
  for (int s = 0; s < kSteps; ++s) {
    auto a = clean.fetch(s);
    auto b = faulted.fetch(s);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(volumes_equal(*a, *b)) << "step " << s;
  }
  EXPECT_EQ(clean.stats().retries, 0u);
  EXPECT_GT(faulted.stats().retries, 0u);
  EXPECT_EQ(faulted.stats().load_failures, 0u);
  EXPECT_EQ(faulted.stats().quarantined_steps, 0u);
}

TEST(VolumeStoreRetry, BackoffDoublesDeterministically) {
  // With backoff configured the retried load still succeeds; this pins
  // the policy accepting a nonzero backoff (timing itself is not
  // asserted — the delay is sub-millisecond by design here).
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kTransient, 2}});
  VolumeStoreConfig config = sync_store_config();
  config.max_retries = 2;
  config.retry_backoff_ms = 0.01;
  VolumeStore store(faulty, config);
  EXPECT_NE(store.fetch(2), nullptr);
  EXPECT_EQ(store.stats().retries, 2u);
}

TEST(VolumeStoreRetry, NotFoundFailsImmediately) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{1, FaultKind::kNotFound, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.max_retries = 5;
  VolumeStore store(faulty, config);
  EXPECT_THROW(store.fetch(1), NotFoundError);
  EXPECT_EQ(store.stats().retries, 0u);  // a missing file never retries
  EXPECT_TRUE(store.is_quarantined(1));
}

TEST(VolumeStoreRetry, ExhaustionQuarantinesTheStep) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kTransient, 10}});
  VolumeStoreConfig config = sync_store_config();
  config.max_retries = 1;
  VolumeStore store(faulty, config);
  EXPECT_THROW(store.fetch(2), TransientIoError);
  EXPECT_TRUE(store.is_quarantined(2));
  EXPECT_EQ(store.stats().load_failures, 1u);
  EXPECT_EQ(store.stats().quarantined_steps, 1u);
  // A quarantined fetch under kThrow rethrows the ORIGINAL error without
  // hammering the source again.
  const std::uint64_t fired = faulty->faults_fired();
  EXPECT_THROW(store.fetch(2), TransientIoError);
  EXPECT_EQ(faulty->faults_fired(), fired);
}

// ---------------------------------------------------------------------------
// Quarantine + FailPolicy (tentpole part 3)

TEST(FailPolicyMatrix, ThrowSurfacesCorruptDataError) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.fail_policy = FailPolicy::kThrow;
  VolumeStore store(faulty, config);
  EXPECT_NE(store.fetch(0), nullptr);
  EXPECT_THROW(store.fetch(2), CorruptDataError);
}

TEST(FailPolicyMatrix, SkipStepReturnsNoData) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.fail_policy = FailPolicy::kSkipStep;
  VolumeStore store(faulty, config);
  EXPECT_EQ(store.fetch(2), nullptr);
  EXPECT_EQ(store.fetch(2), nullptr);  // stable on repeat
  EXPECT_NE(store.fetch(3), nullptr);  // neighbours unaffected
  const StreamStats stats = store.stats();
  EXPECT_GE(stats.skipped_fetches, 2u);
  EXPECT_EQ(stats.quarantined_steps, 1u);
  EXPECT_EQ(store.step_health().quarantined(), std::vector<int>{2});
}

TEST(FailPolicyMatrix, NearestGoodSubstitutesNeighbour) {
  auto inner = blob_source();
  auto faulty = std::make_shared<FaultInjectingSource>(
      inner, std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.fail_policy = FailPolicy::kNearestGood;
  VolumeStore store(faulty, config);
  auto volume = store.fetch(2);
  ASSERT_NE(volume, nullptr);
  // Outward search prefers step - d, so step 1 answers for step 2.
  EXPECT_TRUE(volumes_equal(*volume, inner->generate(1)));
  EXPECT_GE(store.stats().nearest_good_substitutions, 1u);
}

TEST(FailPolicyMatrix, NearestGoodSkipsOverQuarantinedNeighbours) {
  auto inner = blob_source();
  auto faulty = std::make_shared<FaultInjectingSource>(
      inner, std::vector<FaultSpec>{{1, FaultKind::kCorrupt, 1},
                                    {2, FaultKind::kCorrupt, 1},
                                    {3, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.fail_policy = FailPolicy::kNearestGood;
  VolumeStore store(faulty, config);
  auto volume = store.fetch(2);
  ASSERT_NE(volume, nullptr);
  // 1 and 3 are corrupt too; the search widens to step 0.
  EXPECT_TRUE(volumes_equal(*volume, inner->generate(0)));
  EXPECT_EQ(store.stats().quarantined_steps, 3u);
}

TEST(StepHealthReport, TracksVerifiedAndQuarantinedStates) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig config = sync_store_config();
  config.lookahead = 0;  // touch exactly the steps the test fetches
  config.fail_policy = FailPolicy::kSkipStep;
  VolumeStore store(faulty, config);
  (void)store.fetch(0);
  (void)store.fetch(2);
  const StepHealth health = store.step_health();
  ASSERT_EQ(health.states.size(), static_cast<std::size_t>(kSteps));
  EXPECT_EQ(health.states[0], StepState::kVerified);  // procedural source
  EXPECT_EQ(health.states[2], StepState::kQuarantined);
  EXPECT_EQ(health.states[5], StepState::kUnknown);
  const std::string summary = health.summary();
  EXPECT_NE(summary.find("1 quarantined [2]"), std::string::npos) << summary;
}

// ---------------------------------------------------------------------------
// Graceful degradation in consumers

TEST(GracefulDegradation, TrackingBridgesAQuarantinedStep) {
  auto inner = blob_source();
  auto make_sequence = [&](std::shared_ptr<const VolumeSource> src) {
    StreamConfig config;
    config.lookahead = 1;
    config.async_prefetch = false;
    config.fail_policy = FailPolicy::kSkipStep;
    return std::make_unique<StreamedSequence>(std::move(src), config);
  };
  auto clean_seq = make_sequence(inner);
  auto faulty_seq = make_sequence(std::make_shared<FaultInjectingSource>(
      inner, std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}}));

  FixedRangeCriterion criterion(0.5, 1.0);
  const Index3 seed{2, 4, 4};
  TrackResult clean = Tracker(*clean_seq, criterion).track(seed, 0);
  TrackResult gapped = Tracker(*faulty_seq, criterion).track(seed, 0);

  ASSERT_FALSE(clean.masks.empty());
  ASSERT_FALSE(gapped.masks.empty());
  // The quarantined step contributes no mask; every other step's mask is
  // identical to the clean run (re-seeded across the gap).
  EXPECT_EQ(gapped.masks.count(2), 0u);
  for (const auto& [step, mask] : clean.masks) {
    if (step == 2) continue;
    auto it = gapped.masks.find(step);
    ASSERT_NE(it, gapped.masks.end()) << "step " << step;
    EXPECT_EQ(mask_count(it->second), mask_count(mask)) << "step " << step;
  }
  // The gap shows up as death + birth events in the feature history
  // rather than crashing it.
  FeatureHistory history = build_feature_history(gapped);
  EXPECT_FALSE(history.nodes.empty());
}

TEST(GracefulDegradation, SeedOnQuarantinedStepIsAnError) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{0, FaultKind::kCorrupt, 1}});
  StreamConfig config;
  config.lookahead = 0;
  config.async_prefetch = false;
  config.fail_policy = FailPolicy::kSkipStep;
  StreamedSequence sequence(faulty, config);
  FixedRangeCriterion criterion(0.5, 1.0);
  EXPECT_THROW(Tracker(sequence, criterion).track(Index3{2, 4, 4}, 0), Error);
}

TEST(GracefulDegradation, StepThrowsButTryStepSkips) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  StreamConfig config;
  config.lookahead = 0;
  config.async_prefetch = false;
  config.fail_policy = FailPolicy::kSkipStep;
  StreamedSequence sequence(faulty, config);
  EXPECT_EQ(sequence.try_step(2), nullptr);
  EXPECT_THROW(sequence.step(2), CorruptDataError);
  EXPECT_NE(sequence.try_step(1), nullptr);
}

TEST(GracefulDegradation, HistogramsSubstituteNearestGoodUnderSkip) {
  auto inner = blob_source();
  StreamConfig config;
  config.lookahead = 0;
  config.async_prefetch = false;
  config.fail_policy = FailPolicy::kSkipStep;
  StreamedSequence clean(inner, config);
  StreamedSequence faulty(
      std::make_shared<FaultInjectingSource>(
          inner, std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}}),
      config);
  // Derived products degrade to the nearest loadable step (1) instead of
  // throwing, so IATF synthesis keeps producing opacity ramps over gaps.
  const Histogram substituted = faulty.histogram(2);
  const Histogram neighbour = clean.histogram(1);
  ASSERT_EQ(substituted.bins(), neighbour.bins());
  for (int b = 0; b < substituted.bins(); ++b) {
    EXPECT_EQ(substituted.count(b), neighbour.count(b)) << "bin " << b;
  }
  EXPECT_NO_THROW(faulty.cumulative_histogram(2));
}

TEST(GracefulDegradation, IatfTrainsAcrossAGap) {
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(), std::vector<FaultSpec>{{2, FaultKind::kCorrupt, 1}});
  StreamConfig config;
  config.lookahead = 0;
  config.async_prefetch = false;
  config.fail_policy = FailPolicy::kSkipStep;
  StreamedSequence sequence(faulty, config);
  Iatf iatf(sequence);
  TransferFunction1D key(0.0, 1.0);
  key.add_band(0.5, 1.0, 0.9, 0.05);
  iatf.add_key_frame(0, key);
  iatf.add_key_frame(kSteps - 1, key);
  iatf.train(10);
  EXPECT_NO_THROW(iatf.evaluate(2));  // the gap step itself
}

// ---------------------------------------------------------------------------
// Async prefetch failure contract (satellite: no deadlock, no poisoning)

TEST(PrefetchFailure, ThrowingGenerateDoesNotDeadlockOrCachePartialData) {
  // First load of step 2 throws a PLAIN Error (not IoError: a user-source
  // bug, not an I/O fault — no retry, no quarantine); later loads
  // succeed. The async failure must be captured, the next fetch() must
  // neither deadlock nor see a cached partial volume, and the demand
  // reload must return correct data.
  auto fail_once = std::make_shared<std::atomic<int>>(0);
  const Dims d = kDims;
  auto inner = blob_source();
  auto source = std::make_shared<CallbackSource>(
      d, kSteps, std::pair<double, double>{0.0, 1.0},
      [fail_once, inner](int step) {
        if (step == 2 && fail_once->fetch_add(1) == 0) {
          throw Error("simulated user-source failure");
        }
        return inner->generate(step);
      });
  VolumeStoreConfig config;
  config.lookahead = 0;
  config.async_prefetch = true;
  VolumeStore store(source, config);

  store.prefetch(2);  // async load fails on the worker
  auto volume = store.fetch(2);  // waits, collects the failure, reloads
  ASSERT_NE(volume, nullptr);
  EXPECT_TRUE(volumes_equal(*volume, inner->generate(2)));
  EXPECT_FALSE(store.is_quarantined(2));
  EXPECT_GE(store.stats().prefetch_failures, 1u);
}

TEST(PrefetchFailure, WorkerRetriesTransientFaults) {
  auto inner = blob_source();
  auto faulty = std::make_shared<FaultInjectingSource>(
      inner, std::vector<FaultSpec>{{2, FaultKind::kTransient, 1}});
  VolumeStoreConfig config;
  config.lookahead = 0;
  config.async_prefetch = true;
  config.max_retries = 1;
  VolumeStore store(faulty, config);
  store.prefetch(2);
  auto volume = store.fetch(2);
  ASSERT_NE(volume, nullptr);
  EXPECT_TRUE(volumes_equal(*volume, inner->generate(2)));
  EXPECT_GE(store.stats().retries, 1u);
  EXPECT_EQ(store.stats().load_failures, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence through the full pipeline

TEST(FaultEquivalence, PipelineResultsIdenticalUnderTransientFaults) {
  auto inner = blob_source();
  auto make_sequence = [&](std::shared_ptr<const VolumeSource> src,
                           int max_retries) {
    StreamConfig config;
    config.budget_bytes = 3 * kDims.count() * sizeof(float);
    config.lookahead = 1;
    config.async_prefetch = false;
    config.max_retries = max_retries;
    return std::make_unique<StreamedSequence>(std::move(src), config);
  };
  auto clean = make_sequence(inner, 0);
  auto faulted = make_sequence(
      std::make_shared<FaultInjectingSource>(
          inner, std::vector<FaultSpec>{
                     {FaultSpec::kAllSteps, FaultKind::kTransient, 1}}),
      2);

  // IATF transfer functions bit-identical.
  auto train = [&](const VolumeSequence& seq) {
    Iatf iatf(seq);
    TransferFunction1D key(0.0, 1.0);
    key.add_band(0.5, 1.0, 0.9, 0.05);
    iatf.add_key_frame(0, key);
    iatf.add_key_frame(kSteps - 1, key);
    iatf.train(30);
    return iatf.evaluate(kSteps / 2);
  };
  TransferFunction1D a = train(*clean);
  TransferFunction1D b = train(*faulted);
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    ASSERT_EQ(a.opacity_entry(e), b.opacity_entry(e)) << "entry " << e;
  }

  // Tracking masks bit-identical.
  FixedRangeCriterion criterion(0.5, 1.0);
  const Index3 seed{2, 4, 4};
  TrackResult ta = Tracker(*clean, criterion).track(seed, 0);
  TrackResult tb = Tracker(*faulted, criterion).track(seed, 0);
  ASSERT_FALSE(ta.masks.empty());
  ASSERT_EQ(ta.masks.size(), tb.masks.size());
  for (const auto& [step, mask] : ta.masks) {
    auto it = tb.masks.find(step);
    ASSERT_NE(it, tb.masks.end());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      ASSERT_EQ(mask[i], it->second[i]) << "step " << step << " voxel " << i;
    }
  }

  EXPECT_GT(faulted->stats().retries, 0u);
  EXPECT_EQ(faulted->stats().load_failures, 0u);
  const std::string summary = faulted->stats().summary();
  EXPECT_NE(summary.find("faults:"), std::string::npos) << summary;
}

}  // namespace
}  // namespace ifet
