// Multi-class data-space classification (paper Sec 6).
//
// "The user only needs to specify a few sample data of different classes
// with brushes of different color." The binary DataSpaceClassifier covers
// the common feature/background split; this classifier generalizes to N
// material classes: the network has one sigmoid output per class trained
// on one-hot targets, classification returns per-class certainty volumes,
// and label_volume() assigns each voxel its argmax class — the direct
// multi-material segmentation used when a data set has several structures
// of interest.
#pragma once

#include <vector>

#include "core/feature_vector.hpp"
#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "nn/training.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct MultiClassConfig {
  FeatureVectorSpec spec;
  int hidden_units = 14;
  BackpropConfig backprop{0.3, 0.7};
  std::uint64_t seed = 9876;
};

/// A painted voxel with a class id in [0, num_classes).
struct ClassSample {
  Index3 voxel;
  int step = 0;
  int class_id = 0;
};

class MultiClassClassifier {
 public:
  MultiClassClassifier(int num_classes, int num_steps, double value_lo,
                       double value_hi, const MultiClassConfig& config = {});

  int num_classes() const { return num_classes_; }
  const FeatureVectorSpec& spec() const { return config_.spec; }

  /// Add painted samples from the key frame `volume` at `step`.
  void add_samples(const VolumeF& volume, int step,
                   const std::vector<ClassSample>& painted);

  double train(int epochs);
  double train_for(double budget_ms);
  std::size_t training_samples() const { return training_set_.size(); }

  /// Per-class certainties for one voxel (size num_classes()).
  std::vector<double> classify_voxel(const VolumeF& volume, int step, int i,
                                     int j, int k) const;

  /// Certainty volume of a single class (thread-parallel).
  VolumeF class_certainty(const VolumeF& volume, int step,
                          int class_id) const;

  /// Argmax class label per voxel (thread-parallel). Ties go to the lower
  /// class id.
  Volume<std::uint8_t> label_volume(const VolumeF& volume, int step) const;

  /// Mask of voxels whose argmax class is `class_id`.
  Mask class_mask(const VolumeF& volume, int step, int class_id) const;

 private:
  FeatureContext context_for(const VolumeF& volume, int step) const;

  MultiClassConfig config_;
  int num_classes_;
  int num_steps_;
  double value_lo_, value_hi_;
  Mlp network_;
  TrainingSet training_set_;
  Trainer trainer_;
  // Flat inference engine rebuilt from network_ on weight change; both
  // volume passes (class_certainty, label_volume) batch through it.
  FlatMlpCache flat_cache_;
};

}  // namespace ifet
