#include "core/feature_vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "volume/components.hpp"
#include "volume/ops.hpp"

namespace ifet {

int FeatureVectorSpec::width() const {
  int n = 0;
  if (use_value) ++n;
  if (use_shell) n += shell_samples;
  if (use_position) n += 3;
  if (use_time) ++n;
  if (use_gradient) ++n;
  return n;
}

std::vector<std::string> FeatureVectorSpec::component_names() const {
  std::vector<std::string> names;
  if (use_value) names.push_back("value");
  if (use_shell) {
    for (int s = 0; s < shell_samples; ++s) {
      names.push_back("shell" + std::to_string(s));
    }
  }
  if (use_position) {
    names.push_back("pos_x");
    names.push_back("pos_y");
    names.push_back("pos_z");
  }
  if (use_time) names.push_back("time");
  if (use_gradient) names.push_back("gradient");
  return names;
}

std::vector<Vec3> shell_directions(int count) {
  static const std::vector<Vec3> kAll = [] {
    std::vector<Vec3> dirs;
    // 6 axes.
    dirs.push_back({1, 0, 0});
    dirs.push_back({-1, 0, 0});
    dirs.push_back({0, 1, 0});
    dirs.push_back({0, -1, 0});
    dirs.push_back({0, 0, 1});
    dirs.push_back({0, 0, -1});
    // 8 cube diagonals.
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        for (int sz : {-1, 1}) {
          dirs.push_back(Vec3{static_cast<double>(sx),
                              static_cast<double>(sy),
                              static_cast<double>(sz)}
                             .normalized());
        }
      }
    }
    // 12 edge midpoints.
    const int signs[2] = {-1, 1};
    for (int a : signs) {
      for (int b : signs) {
        dirs.push_back(Vec3{static_cast<double>(a), static_cast<double>(b), 0}
                           .normalized());
        dirs.push_back(Vec3{static_cast<double>(a), 0, static_cast<double>(b)}
                           .normalized());
        dirs.push_back(Vec3{0, static_cast<double>(a), static_cast<double>(b)}
                           .normalized());
      }
    }
    return dirs;
  }();
  IFET_REQUIRE(count > 0 && count <= static_cast<int>(kAll.size()),
               "shell_directions: supported counts are 1..26");
  return {kAll.begin(), kAll.begin() + count};
}

std::vector<Vec3> shell_offsets(double radius, int count) {
  std::vector<Vec3> offsets = shell_directions(count);
  // 1/256 voxel is an exact binary fraction: the rounded offsets and all
  // voxel+offset sums are exactly representable, which pins the trilinear
  // weights to per-direction constants (see the header for why).
  for (Vec3& o : offsets) {
    o.x = std::round(radius * o.x * 256.0) / 256.0;
    o.y = std::round(radius * o.y * 256.0) / 256.0;
    o.z = std::round(radius * o.z * 256.0) / 256.0;
  }
  return offsets;
}

std::vector<double> assemble_feature_vector(const FeatureVectorSpec& spec,
                                            const FeatureContext& context,
                                            int i, int j, int k) {
  IFET_REQUIRE(context.volume != nullptr,
               "assemble_feature_vector: null volume");
  const VolumeF& vol = *context.volume;
  const double span = std::max(1e-12, context.value_hi - context.value_lo);
  auto norm_value = [&](double v) {
    return clamp((v - context.value_lo) / span, 0.0, 1.0);
  };

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(spec.width()));
  if (spec.use_value) {
    out.push_back(norm_value(vol.clamped(i, j, k)));
  }
  if (spec.use_shell) {
    const auto offsets = shell_offsets(spec.shell_radius, spec.shell_samples);
    for (const Vec3& off : offsets) {
      out.push_back(norm_value(vol.sample(i + off.x, j + off.y, k + off.z)));
    }
  }
  if (spec.use_position) {
    const Dims d = vol.dims();
    out.push_back(static_cast<double>(i) / std::max(1, d.x - 1));
    out.push_back(static_cast<double>(j) / std::max(1, d.y - 1));
    out.push_back(static_cast<double>(k) / std::max(1, d.z - 1));
  }
  if (spec.use_time) {
    out.push_back(static_cast<double>(context.step) /
                  std::max(1, context.num_steps - 1));
  }
  if (spec.use_gradient) {
    // Normalize by the value span; central differences are bounded by it.
    out.push_back(clamp(gradient_at(vol, i, j, k).norm() / span, 0.0, 1.0));
  }
  return out;
}

FeatureBlockAssembler::FeatureBlockAssembler(const FeatureVectorSpec& spec,
                                             const FeatureContext& context)
    : spec_(spec), context_(context), width_(spec.width()) {
  IFET_REQUIRE(context_.volume != nullptr, "FeatureBlockAssembler: null volume");
  span_ = std::max(1e-12, context_.value_hi - context_.value_lo);
  const Dims d = context_.volume->dims();
  if (spec_.use_shell) {
    const auto offsets = shell_offsets(spec_.shell_radius, spec_.shell_samples);
    // Per-axis padding so every tap's floor corner and its +1 neighbour
    // index straight into the padded grid for any voxel of the volume.
    int klo_x = 0, khi_x = 0, klo_y = 0, khi_y = 0, klo_z = 0, khi_z = 0;
    taps_.reserve(offsets.size());
    for (const Vec3& off : offsets) {
      ShellTap tap;
      const int kx = static_cast<int>(std::floor(off.x));
      const int ky = static_cast<int>(std::floor(off.y));
      const int kz = static_cast<int>(std::floor(off.z));
      // Exact: off - floor(off) is a multiple of 1/256, and it equals the
      // (i + off) - floor(i + off) the scalar path computes (both sums are
      // exact). These are the voxel-independent trilinear weights.
      tap.fx = off.x - static_cast<double>(kx);
      tap.fy = off.y - static_cast<double>(ky);
      tap.fz = off.z - static_cast<double>(kz);
      taps_.push_back(tap);
      klo_x = std::min(klo_x, kx);
      khi_x = std::max(khi_x, kx);
      klo_y = std::min(klo_y, ky);
      khi_y = std::max(khi_y, ky);
      klo_z = std::min(klo_z, kz);
      khi_z = std::max(khi_z, kz);
    }
    const int plx = -klo_x, phx = khi_x + 1;
    const int ply = -klo_y, phy = khi_y + 1;
    const int plz = -klo_z, phz = khi_z + 1;
    const int px = d.x + plx + phx;
    const int py = d.y + ply + phy;
    const int pz = d.z + plz + phz;
    pdx_ = px;
    pdxy_ = static_cast<std::ptrdiff_t>(px) * py;
    padded_.resize(pdxy_ * static_cast<std::ptrdiff_t>(pz));
    const VolumeF& vol = *context_.volume;
    std::ptrdiff_t w = 0;
    for (int c = 0; c < pz; ++c) {
      for (int b = 0; b < py; ++b) {
        for (int a = 0; a < px; ++a) {
          padded_[w++] = vol.clamped(a - plx, b - ply, c - plz);
        }
      }
    }
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      const Vec3& off = offsets[t];
      const int kx = static_cast<int>(std::floor(off.x));
      const int ky = static_cast<int>(std::floor(off.y));
      const int kz = static_cast<int>(std::floor(off.z));
      taps_[t].base = (kx + plx) + pdx_ * (ky + ply) + pdxy_ * (kz + plz);
    }
  }
  // Denominators (not reciprocals) so the division matches the scalar
  // path bit for bit.
  den_x_ = static_cast<double>(std::max(1, d.x - 1));
  den_y_ = static_cast<double>(std::max(1, d.y - 1));
  den_z_ = static_cast<double>(std::max(1, d.z - 1));
  time_value_ = static_cast<double>(context_.step) /
                std::max(1, context_.num_steps - 1);
}

void FeatureBlockAssembler::assemble_feature_block(const Index3* voxels,
                                                   int count,
                                                   double* out) const {
  IFET_REQUIRE(count == 0 || (voxels != nullptr && out != nullptr),
               "assemble_feature_block: null block buffer");
  const VolumeF& vol = *context_.volume;
  const double lo = context_.value_lo;
  const double span = span_;
  const float* pad = padded_.data();
  const std::ptrdiff_t pdx = pdx_;
  const std::ptrdiff_t pdxy = pdxy_;
  for (int v = 0; v < count; ++v) {
    const int i = voxels[v].x;
    const int j = voxels[v].y;
    const int k = voxels[v].z;
    double* row = out + static_cast<std::size_t>(v) * width_;
    if (spec_.use_value) {
      *row++ = clamp((vol.clamped(i, j, k) - lo) / span, 0.0, 1.0);
    }
    if (spec_.use_shell) {
      // Clamp-free trilinear taps on the padded grid: the same lerp chain
      // as Volume::sample with the per-direction constant weights.
      const std::ptrdiff_t vbase = i + pdx * j + pdxy * k;
      for (const ShellTap& tap : taps_) {
        const float* c = pad + vbase + tap.base;
        const double c000 = c[0], c100 = c[1];
        const double c010 = c[pdx], c110 = c[pdx + 1];
        const double c001 = c[pdxy], c101 = c[pdxy + 1];
        const double c011 = c[pdxy + pdx], c111 = c[pdxy + pdx + 1];
        const double c00 = lerp(c000, c100, tap.fx);
        const double c10 = lerp(c010, c110, tap.fx);
        const double c01 = lerp(c001, c101, tap.fx);
        const double c11 = lerp(c011, c111, tap.fx);
        const double s =
            lerp(lerp(c00, c10, tap.fy), lerp(c01, c11, tap.fy), tap.fz);
        *row++ = clamp((s - lo) / span, 0.0, 1.0);
      }
    }
    if (spec_.use_position) {
      *row++ = static_cast<double>(i) / den_x_;
      *row++ = static_cast<double>(j) / den_y_;
      *row++ = static_cast<double>(k) / den_z_;
    }
    if (spec_.use_time) {
      *row++ = time_value_;
    }
    if (spec_.use_gradient) {
      *row++ = clamp(gradient_at(vol, i, j, k).norm() / span, 0.0, 1.0);
    }
  }
}

void FeatureBlockAssembler::assemble_feature_cols(const Index3* voxels,
                                                  int count, double* out,
                                                  int ld) const {
  IFET_REQUIRE(count == 0 || (voxels != nullptr && out != nullptr),
               "assemble_feature_cols: null block buffer");
  IFET_REQUIRE(ld >= count, "assemble_feature_cols: ld shorter than batch");
  const VolumeF& vol = *context_.volume;
  const double lo = context_.value_lo;
  const double span = span_;
  const float* pad = padded_.data();
  const std::ptrdiff_t pdx = pdx_;
  const std::ptrdiff_t pdxy = pdxy_;
  // Chunk so the hoisted per-voxel base offsets live on the stack; within
  // a chunk every column write is one tight loop over voxels.
  constexpr int kChunk = 256;
  std::ptrdiff_t vb[kChunk];
  for (int v0 = 0; v0 < count; v0 += kChunk) {
    const int n = std::min(kChunk, count - v0);
    const Index3* vx = voxels + v0;
    if (spec_.use_shell) {
      for (int v = 0; v < n; ++v) {
        vb[v] = vx[v].x + pdx * vx[v].y + pdxy * vx[v].z;
      }
    }
    int comp = 0;
    auto col_at = [&](int c) {
      return out + static_cast<std::size_t>(c) * ld + v0;
    };
    if (spec_.use_value) {
      double* col = col_at(comp++);
      for (int v = 0; v < n; ++v) {
        col[v] =
            clamp((vol.clamped(vx[v].x, vx[v].y, vx[v].z) - lo) / span, 0.0,
                  1.0);
      }
    }
    if (spec_.use_shell) {
      // The classify sweeps feed x-fastest voxel lists, so a chunk is a
      // handful of maximal unit-stride runs (whole x-rows). Splitting the
      // chunk into those runs turns every tap's eight corner loads into
      // contiguous float loads (c[u], c[u+1], c[u+pdx], ...), which the
      // vectorizer handles — the indirect vb[v] gather it cannot.
      int run_start[kChunk];
      int run_len[kChunk];
      int nruns = 0;
      for (int v = 0; v < n;) {
        const int s = v++;
        while (v < n && vb[v] == vb[v - 1] + 1) ++v;
        run_start[nruns] = s;
        run_len[nruns] = v - s;
        ++nruns;
      }
      // Direction-outer: one tap's constant base offset and trilinear
      // weights stay in registers while the loop streams voxels. Same
      // arithmetic per (voxel, tap) as assemble_feature_block.
      for (const ShellTap& tap : taps_) {
        double* col = col_at(comp++);
        const std::ptrdiff_t tb = tap.base;
        const double fx = tap.fx, fy = tap.fy, fz = tap.fz;
        for (int rr = 0; rr < nruns; ++rr) {
          const int rs = run_start[rr];
          const int len = run_len[rr];
          const float* c = pad + vb[rs] + tb;
          double* o = col + rs;
          for (int u = 0; u < len; ++u) {
            const double c000 = c[u], c100 = c[u + 1];
            const double c010 = c[u + pdx], c110 = c[u + pdx + 1];
            const double c001 = c[u + pdxy], c101 = c[u + pdxy + 1];
            const double c011 = c[u + pdxy + pdx], c111 = c[u + pdxy + pdx + 1];
            const double c00 = lerp(c000, c100, fx);
            const double c10 = lerp(c010, c110, fx);
            const double c01 = lerp(c001, c101, fx);
            const double c11 = lerp(c011, c111, fx);
            const double s = lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
            o[u] = clamp((s - lo) / span, 0.0, 1.0);
          }
        }
      }
    }
    if (spec_.use_position) {
      double* cx = col_at(comp++);
      double* cy = col_at(comp++);
      double* cz = col_at(comp++);
      for (int v = 0; v < n; ++v) {
        cx[v] = static_cast<double>(vx[v].x) / den_x_;
        cy[v] = static_cast<double>(vx[v].y) / den_y_;
        cz[v] = static_cast<double>(vx[v].z) / den_z_;
      }
    }
    if (spec_.use_time) {
      double* col = col_at(comp++);
      for (int v = 0; v < n; ++v) col[v] = time_value_;
    }
    if (spec_.use_gradient) {
      double* col = col_at(comp++);
      for (int v = 0; v < n; ++v) {
        col[v] = clamp(
            gradient_at(vol, vx[v].x, vx[v].y, vx[v].z).norm() / span, 0.0,
            1.0);
      }
    }
  }
}

double derive_shell_radius(const Mask& positive_samples) {
  Labeling labeling = label_components(positive_samples);
  if (labeling.components.empty()) return 3.0;
  double mean_half_extent = 0.0;
  for (const auto& c : labeling.components) {
    double ex = c.bbox_max.x - c.bbox_min.x + 1;
    double ey = c.bbox_max.y - c.bbox_min.y + 1;
    double ez = c.bbox_max.z - c.bbox_min.z + 1;
    mean_half_extent += (ex + ey + ez) / 6.0;
  }
  mean_half_extent /= static_cast<double>(labeling.components.size());
  return clamp(mean_half_extent, 1.5, 6.0);
}

}  // namespace ifet
