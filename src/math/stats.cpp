#include "math/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ifet {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double pearson(std::span<const double> a, std::span<const double> b) {
  IFET_REQUIRE(a.size() == b.size(), "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  double ma = mean_of(a);
  double mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double xa = a[i] - ma;
    double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  double denom = std::sqrt(da * db);
  return denom > 0.0 ? num / denom : 0.0;
}

}  // namespace ifet
