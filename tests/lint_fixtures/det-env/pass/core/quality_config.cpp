// PASS fixture: the corrected form injects the setting at construction;
// the environment read lives in a cold factory that no deterministic
// root reaches.
#include <cstdlib>

#define IFET_DETERMINISTIC

namespace fixture {

class QualityConfig {
 public:
  explicit QualityConfig(int level) : level_(level) {}

  IFET_DETERMINISTIC int quality() const { return level_; }

  static QualityConfig from_environment() {
    const char* env = std::getenv("FIXTURE_QUALITY");  // cold: unreachable
    return QualityConfig(env == nullptr ? 1 : static_cast<int>(env[0]) - 48);
  }

 private:
  int level_ = 1;
};

}  // namespace fixture
