// Fixture (should FAIL): a broad catch around a volume load flattens the
// typed IoError taxonomy the retry/quarantine machinery dispatches on.
#include <exception>
#include <string>

int warm(const std::string& path) {
  try {
    auto v = read_vol(path);
    return 0;
  } catch (const std::exception&) {
    return -1;
  }
}
