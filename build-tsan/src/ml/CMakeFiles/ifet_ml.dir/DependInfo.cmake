
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/ifet_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/ifet_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/ifet_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/ifet_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/ifet_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/ifet_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/ifet_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
