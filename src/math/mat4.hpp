// Row-major 4x4 matrix with the transforms the ray caster needs
// (look-at view, rotations, point/vector transform, affine inverse).
#pragma once

#include <array>

#include "math/vec.hpp"

namespace ifet {

struct Mat4 {
  // m[row][col], row-major.
  std::array<std::array<double, 4>, 4> m{};

  static Mat4 identity();
  static Mat4 translation(const Vec3& t);
  static Mat4 scaling(const Vec3& s);
  static Mat4 rotation_x(double radians);
  static Mat4 rotation_y(double radians);
  static Mat4 rotation_z(double radians);

  /// Camera-to-world transform for an eye looking at `target` with `up`.
  static Mat4 look_at(const Vec3& eye, const Vec3& target, const Vec3& up);

  Mat4 operator*(const Mat4& o) const;

  /// Transform a point (w = 1, translation applies).
  Vec3 transform_point(const Vec3& p) const;

  /// Transform a direction (w = 0, translation ignored).
  Vec3 transform_vector(const Vec3& v) const;

  /// Inverse assuming the matrix is affine with orthonormal upper 3x3 *not*
  /// required — full Gaussian elimination on the 4x4.
  Mat4 inverse() const;
};

}  // namespace ifet
