// Scripted client commands for the multi-tenant server.
//
// A client session drives the extraction/tracking pipelines through a
// small command vocabulary instead of direct method calls, so requests
// can be queued on the session's strand (per-session FIFO, cross-session
// parallel — see session_manager.hpp) and replayed deterministically by
// the load generator (bench_perf_server). Every command reduces its
// product — a feedback volume, a synthesized TF, a track mask set, a
// rendered frame — to a CRC32 digest, which is what the
// tight-vs-infinite-budget bitwise equivalence check compares.
#pragma once

#include <cstdint>
#include <string>

#include "session/session.hpp"
#include "volume/volume.hpp"

namespace ifet {

enum class CommandKind {
  kPaint,            ///< Brush stroke into the classifier's training set.
  kSelectUnwanted,   ///< Mark a box of voxels as negative samples.
  kTrainClassifier,  ///< Deterministic classifier training epochs.
  kClassify,         ///< Feedback volume of a step; digest of the voxels.
  kSetKeyFrame,      ///< Upsert a banded key-frame TF at a step.
  kTrainTf,          ///< Deterministic IATF training epochs.
  kQueryTf,          ///< Adaptive TF for a step via the shared
                     ///< DerivedCache (the cross-client dedup path).
  kHistogram,        ///< Cumulative histogram of a step (shared products).
  kTrack,            ///< 4D region growing with the adaptive criterion.
  kRender,           ///< Preview frame through the current adaptive TF.
  kHintWindow,       ///< Declare the client's step window.
};

/// Backpressure class of a command kind (docs/SERVER.md contract table).
/// Sheddable commands are idempotent reads whose product a client can
/// re-request without losing session state (renders, TF queries,
/// histograms, classification snapshots); once a newer request supersedes
/// them they may be dropped from a full queue. State-mutating commands
/// (paint, training, key frames, tracking, window hints) are NEVER shed
/// once accepted — a client must be able to rely on an accepted mutation
/// happening — so under overload they can only be rejected at submit.
constexpr bool command_is_sheddable(CommandKind kind) {
  switch (kind) {
    case CommandKind::kClassify:
    case CommandKind::kQueryTf:
    case CommandKind::kHistogram:
    case CommandKind::kRender:
      return true;
    case CommandKind::kPaint:
    case CommandKind::kSelectUnwanted:
    case CommandKind::kTrainClassifier:
    case CommandKind::kSetKeyFrame:
    case CommandKind::kTrainTf:
    case CommandKind::kTrack:
    case CommandKind::kHintWindow:
      return false;
  }
  return false;
}

struct Command {
  CommandKind kind = CommandKind::kHintWindow;
  /// Target step (paint / classify / key frame / query / track seed step /
  /// render / histogram).
  int step = 0;

  /// Time budget in milliseconds, stamped as an ABSOLUTE deadline when the
  /// command is accepted (queue time counts); 0 = unlimited. A command
  /// whose budget runs out fails with ServerStatus::kDeadlineExceeded —
  /// mutating commands interrupted mid-flight may have partially applied,
  /// so clients give mutations generous budgets (docs/SERVER.md).
  double deadline_ms = 0.0;

  // kPaint
  PaintStroke stroke{};
  // kSelectUnwanted
  Index3 box_lo{};
  Index3 box_hi{};
  // kTrainClassifier / kTrainTf (epoch-counted — never wall-clock — so
  // replays are bitwise reproducible).
  int epochs = 1;
  // kSetKeyFrame: one opacity band, positioned as FRACTIONS of the
  // sequence value range so scripts are data-set independent.
  double band_lo = 0.4;
  double band_hi = 0.6;
  double band_peak = 0.9;
  double band_skirt = 0.05;
  // kTrack
  Index3 seed{};
  double opacity_cut = 0.25;
  int track_min_step = -1;
  int track_max_step = -1;
  // kRender
  int image_size = 32;
  double azimuth = 0.6;
  double elevation = 0.4;
  double distance = 2.0;
  // kHintWindow
  int window_lo = 0;
  int window_hi = 0;
};

/// Typed outcome of a submitted command. Every submitted command gets
/// exactly one result — never a silent drop, never a hang: a refused or
/// shed command completes with kOverloaded, a blown budget with
/// kDeadlineExceeded (docs/ROBUSTNESS.md, "Overload and deadlines").
enum class ServerStatus : std::uint8_t {
  kOk,                ///< Command ran; digest/value are valid.
  kError,             ///< Command ran and failed; `error` has the text.
  kOverloaded,        ///< Rejected at submit or shed from a full queue;
                      ///< retry after `retry_after_ms`.
  kDeadlineExceeded,  ///< The command's budget ran out (queued or running).
};

struct ServerResult {
  bool ok = true;
  ServerStatus status = ServerStatus::kOk;  ///< Typed outcome; ok ==
                                            ///< (status == kOk).
  double retry_after_ms = 0.0;  ///< kOverloaded only: the server's backlog
                                ///< estimate (queue depth x recent service
                                ///< time) — when a retry is worth sending.
  std::string error;      ///< Exception text when !ok.
  std::uint32_t digest = 0;  ///< CRC32 of the command's product (0 for
                             ///< commands without one).
  double value = 0.0;     ///< Command-specific scalar: painted voxels,
                          ///< training MSE, tracked voxels, ...

  // kRender only: the served frame's brick empty-space-skipping counters
  // (zero for other commands), so clients observe the ingest-time brick
  // index working without a second round trip.
  std::uint64_t bricks_total = 0;   ///< Bricks in the step's index.
  std::uint64_t bricks_active = 0;  ///< Bricks the adaptive TF left visible.
  double skip_rate = 0.0;           ///< Fraction of samples clipped.
};

}  // namespace ifet
