file(REMOVE_RECURSE
  "CMakeFiles/ifet_util.dir/cli.cpp.o"
  "CMakeFiles/ifet_util.dir/cli.cpp.o.d"
  "CMakeFiles/ifet_util.dir/csv.cpp.o"
  "CMakeFiles/ifet_util.dir/csv.cpp.o.d"
  "CMakeFiles/ifet_util.dir/error.cpp.o"
  "CMakeFiles/ifet_util.dir/error.cpp.o.d"
  "CMakeFiles/ifet_util.dir/rng.cpp.o"
  "CMakeFiles/ifet_util.dir/rng.cpp.o.d"
  "CMakeFiles/ifet_util.dir/table.cpp.o"
  "CMakeFiles/ifet_util.dir/table.cpp.o.d"
  "libifet_util.a"
  "libifet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
