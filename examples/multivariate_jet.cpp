// Multivariate extraction demo (paper Sec 8: "the system can take
// multivariate data as input"): run the two-variable plane-jet simulation
// and extract the entrainment vortices — strong vorticity in fuel-free air
// — a joint condition neither variable expresses alone.
//
// Run:  ./multivariate_jet [--out=DIR]
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "core/multivariate.hpp"
#include "eval/metrics.hpp"
#include "flowsim/datasets.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  std::filesystem::create_directories(out_dir);

  std::cout << "running the plane-jet fluid simulation (two variables: "
               "vorticity magnitude + fuel)...\n";
  CombustionJetConfig cfg;
  cfg.dims = Dims{24, 36, 16};
  cfg.num_steps = 10;
  cfg.solver_steps_per_snapshot = 3;
  CombustionJetSource source(cfg);
  const int step = 9;
  VolumeF vorticity = source.generate(step);
  const VolumeF& fuel = source.fuel_snapshot(step);
  std::vector<const VolumeF*> vars{&vorticity, &fuel};
  auto [vlo, vhi] = source.value_range();

  // The scientist paints examples of the joint feature (in the GUI: on
  // slices of either variable; here: sampled from the joint condition).
  std::vector<float> sorted(vorticity.data().begin(),
                            vorticity.data().end());
  auto nth =
      sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size()) * 3 / 4;
  std::nth_element(sorted.begin(), nth, sorted.end());
  const float vcut = *nth;
  auto is_feature = [&](std::size_t i) {
    return vorticity[i] >= vcut && fuel[i] < 0.2f;
  };

  Rng rng(5);
  std::vector<PaintedVoxel> painted;
  int pos = 0, neg = 0;
  while (pos < 200 || neg < 200) {
    std::size_t pick = rng.uniform_index(vorticity.size());
    if (is_feature(pick) && pos < 200) {
      painted.push_back({vorticity.coord_of(pick), step, 1.0});
      ++pos;
    } else if (!is_feature(pick) && neg < 200) {
      painted.push_back({vorticity.coord_of(pick), step, 0.0});
      ++neg;
    }
  }

  MultivariateConfig mcfg;
  mcfg.spec.use_position = false;
  mcfg.spec.use_time = false;
  mcfg.spec.shell_samples = 6;
  MultivariateClassifier classifier(cfg.num_steps, {{vlo, vhi}, {0.0, 1.0}},
                                    mcfg);
  classifier.add_samples(vars, step, painted);
  double mse = classifier.train(500);
  std::cout << "trained on " << classifier.training_samples()
            << " painted voxels, MSE " << mse << "\n";

  Mask extracted = classifier.classify_mask(vars, step, 0.5);
  Mask truth(vorticity.dims());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = is_feature(i) ? 1 : 0;
  }
  MaskScore score = score_mask(extracted, truth);
  std::cout << "entrainment-vortex extraction: recall " << score.recall()
            << ", precision " << score.precision() << ", F1 " << score.f1()
            << "\n";

  // Render the extraction: keep vorticity values only where classified.
  VolumeF extracted_field(vorticity.dims());
  for (std::size_t i = 0; i < vorticity.size(); ++i) {
    extracted_field[i] = extracted[i] ? vorticity[i] : 0.0f;
  }
  TransferFunction1D tf(vlo, vhi);
  tf.add_band(lerp(vlo, vhi, 0.2), vhi, 0.8);
  RenderSettings settings;
  settings.width = 200;
  settings.height = 260;
  Raycaster caster(settings);
  Camera camera(0.9, 0.3, 2.6);
  write_ppm(caster.render(extracted_field, tf, ColorMap(), camera),
            out_dir + "/multivariate_entrainment.ppm");
  std::cout << "wrote " << out_dir << "/multivariate_entrainment.ppm\n";
  return 0;
}
