// SoA ray-packet compositing kernel for the brick-skipping ray caster.
//
// Once empty-space skipping has clipped a ray down to runs of samples in
// potentially-visible bricks, each run is processed in structure-of-arrays
// form: positions, gathered trilinear values, TF opacity/color, and
// gradient shading are computed in staged per-lane loops over contiguous
// arrays, then composited sequentially (front-to-back order is inherently
// serial). The staged loops live in their own translation unit compiled
// with IFET_HOT_KERNEL_OPTIONS (-O3 -mavx2 -fno-trapping-math
// -ffp-contract=off under IFET_AVX2_KERNELS) — the FlatMlp tile idiom.
//
// Bitwise contract: every lane evaluates EXACTLY the double expressions of
// the scalar march in render_rows, in the same per-sample order, with FP
// contraction off, so images are bitwise identical to the unskipped scalar
// path (bench_perf_render memcmps all compositing modes; the tsan CI stage
// re-proves it every run).
//
// Allocation contract: the scratch is a caller-owned fixed-size POD
// (stack-local in render_rows); the kernel allocates nothing.
#pragma once

#include <cstdint>

#include "render/camera.hpp"
#include "render/raycaster.hpp"

namespace ifet {

/// Caller-owned SoA scratch for one compositing run (~5 KB, lives on the
/// render worker's stack).
struct RayPacket {
  /// Samples per run: enough rows for the staged loops to amortize and
  /// vectorize (the FlatMlp tile size), small enough to stay L1-resident.
  static constexpr int kLanes = 64;

  double t[kLanes];                 ///< world-space ray parameter
  double vx[kLanes], vy[kLanes], vz[kLanes];  ///< continuous voxel coords
  double value[kLanes];             ///< trilinear volume samples
  double opacity[kLanes];           ///< pre-correction TF opacity
  double r[kLanes], g[kLanes], b[kLanes];     ///< per-lane color
  std::uint8_t lit[kLanes];         ///< highlight-mask hits
};

/// Composite samples [i0, i0 + count) of one ray (positions t0 + i*dt)
/// front-to-back into (alpha, accum). Returns the number of lanes actually
/// composited: count normally, fewer when early termination fires
/// (`terminated` is then set and the remaining lanes are untouched by the
/// compositor). count must be in (0, RayPacket::kLanes].
IFET_HOT int composite_packet(const Raycaster::Plan& plan,
                              const RenderSettings& settings, const Ray& ray,
                              double t0, long i0, int count,
                              RayPacket& scratch, double& alpha, Rgb& accum,
                              bool& terminated);

}  // namespace ifet
