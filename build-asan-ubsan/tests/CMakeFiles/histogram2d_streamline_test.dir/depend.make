# Empty dependencies file for histogram2d_streamline_test.
# This may be replaced when dependencies are built.
