// Deterministic fault injection for the streaming stack.
//
// FaultInjectingSource wraps any VolumeSource and makes selected loads
// fail on a seeded, repeatable schedule: throw a TransientIoError N times
// then heal (exercises retry), throw CorruptDataError forever (exercises
// quarantine + FailPolicy), throw NotFoundError, delay the load (exercises
// prefetch overlap under latency), or silently bit-flip one voxel
// (exercises end-to-end equivalence checks — the streaming layer cannot
// see this one; only payload checksums upstream would). Tests, the TSan
// fault-storm stress, and `ifet_tool track --inject-faults` all drive the
// stack through this one wrapper, so every failure path is reachable
// without hand-corrupting files. docs/ROBUSTNESS.md has the recipe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"
#include "volume/sequence.hpp"

namespace ifet {

enum class FaultKind : std::uint8_t {
  kTransient,  ///< TransientIoError until the count runs out, then heal.
  kCorrupt,    ///< CorruptDataError on every matching load.
  kNotFound,   ///< NotFoundError on every matching load.
  kDelay,      ///< Sleep ~1ms per count, then produce the real volume.
  kBitFlip,    ///< Flip one seeded-random voxel's bits (silent corruption).
  kSlow,       ///< Sleep `count` ms on EVERY matching load, forever — a
               ///< uniformly slow device, not a transient hiccup. The
               ///< overload harness's latency injector (spec syntax
               ///< `slow@step[:ms]`; docs/ROBUSTNESS.md).
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault: fail loads of `step` (or every step) `count`
/// times. The count is tracked PER STEP, so `transient@all:1` means
/// "every step fails exactly once" — the schedule for the canonical
/// fault-equivalence property. kCorrupt and kNotFound ignore the count
/// and fail forever — they model a bad file, not a flaky transport.
/// kSlow also fires forever; its `count` field is repurposed as the
/// per-load delay in milliseconds (a device that IS slow, not one that
/// fails N times).
struct FaultSpec {
  static constexpr int kAllSteps = -1;
  int step = kAllSteps;
  FaultKind kind = FaultKind::kTransient;
  int count = 1;
};

/// Parse `kind@step[:count]` (step = integer or "all"), e.g.
/// "transient@all", "corrupt@7", "transient@3:2", "slow@all:5" (every
/// load of every step takes 5 ms extra). Throws ifet::Error on malformed
/// input.
FaultSpec parse_fault_spec(const std::string& text);

/// Parse a comma-separated list of fault specs (the --inject-faults CLI
/// syntax).
std::vector<FaultSpec> parse_fault_schedule(const std::string& text);

/// VolumeSource decorator applying a deterministic fault schedule.
/// Thread-safe: generate() is called from prefetch workers.
class FaultInjectingSource final : public VolumeSource {
 public:
  FaultInjectingSource(std::shared_ptr<const VolumeSource> inner,
                       std::vector<FaultSpec> schedule,
                       std::uint64_t seed = 0x5eedULL);

  Dims dims() const override { return inner_->dims(); }
  int num_steps() const override { return inner_->num_steps(); }
  std::pair<double, double> value_range() const override {
    return inner_->value_range();
  }
  VolumeF generate(int step) const override;

  /// Faults actually fired so far (for test assertions).
  std::uint64_t faults_fired() const IFET_EXCLUDES(mutex_);

 private:
  std::shared_ptr<const VolumeSource> inner_;
  std::uint64_t seed_;
  std::vector<FaultSpec> schedule_;
  mutable Mutex mutex_;
  /// remaining_[spec_index][step]: counted firings left (lazily seeded
  /// from the spec's count the first time that step matches).
  mutable std::vector<std::unordered_map<int, int>> remaining_
      IFET_GUARDED_BY(mutex_);
  mutable std::uint64_t fired_ IFET_GUARDED_BY(mutex_) = 0;
};

}  // namespace ifet
