// Cross-module property sweeps (TEST_P): invariants that must hold across
// parameter ranges, not just single configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/iatf.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "flowsim/fluid_solver.hpp"
#include "render/raycaster.hpp"
#include "test_helpers.hpp"
#include "volume/ops.hpp"

namespace ifet {
namespace {

// --- Tracking: temporal overlap governs trackability ------------------------

std::shared_ptr<CallbackSource> moving_box(int steps, int speed) {
  Dims d{48, 16, 16};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, speed](int step) {
        VolumeF v(d, 0.1f);
        int x0 = 2 + speed * step;
        for (int k = 6; k < 10; ++k) {
          for (int j = 6; j < 10; ++j) {
            for (int i = x0; i < x0 + 4 && i < d.x; ++i) {
              v.at(i, j, k) = 0.8f;
            }
          }
        }
        return v;
      });
}

class TrackerSpeedTest : public ::testing::TestWithParam<int> {};

TEST_P(TrackerSpeedTest, TracksIffConsecutiveStepsOverlap) {
  const int speed = GetParam();
  const int steps = 5;
  CachedSequence seq(moving_box(steps, speed), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult track = tracker.track(Index3{3, 7, 7}, 0);
  // The box is 4 voxels wide: overlap exists iff speed < 4.
  const bool should_track = speed < 4;
  EXPECT_EQ(track.reached(1), should_track) << "speed " << speed;
  if (should_track) {
    for (int s = 0; s < steps; ++s) {
      EXPECT_EQ(track.voxels_at(s), 64u) << "speed " << speed << " t " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, TrackerSpeedTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 8));

// --- IATF: drift magnitude sweep --------------------------------------------

class IatfDriftTest : public ::testing::TestWithParam<double> {};

TEST_P(IatfDriftTest, FollowsLinearDriftOfAnyMagnitude) {
  const double total_drift = GetParam();
  const int steps = 9;
  Dims d{12, 12, 12};
  auto source = std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 2.0},
      [d, steps, total_drift](int step) {
        double off = total_drift * step / (steps - 1);
        VolumeF v(d);
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              bool feature = i >= 4 && i < 8 && j >= 4 && j < 8 && k >= 4 &&
                             k < 8;
              v.at(i, j, k) =
                  static_cast<float>((feature ? 0.5 : 0.1) + off);
            }
          }
        }
        return v;
      });
  CachedSequence seq(source, 4, 512);
  auto band = [&](int step) {
    TransferFunction1D tf(0.0, 2.0);
    double c = 0.5 + total_drift * step / (steps - 1);
    tf.add_band(c - 0.08, c + 0.08, 1.0, 0.02);
    return tf;
  };
  Iatf iatf(seq);
  iatf.add_key_frame(0, band(0));
  iatf.add_key_frame(steps - 1, band(steps - 1));
  iatf.train(1500);
  // The feature value at the middle step must be opaque.
  const int mid = steps / 2;
  double feature_value = 0.5 + total_drift * mid / (steps - 1);
  EXPECT_GT(iatf.evaluate(mid).opacity(feature_value), 0.4)
      << "drift " << total_drift;
}

INSTANTIATE_TEST_SUITE_P(Drifts, IatfDriftTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.9, 1.3));

// --- Fluid solver: stability across grids and steps --------------------------

class SolverGridTest : public ::testing::TestWithParam<Dims> {};

TEST_P(SolverGridTest, RemainsFiniteAndNearlyDivergenceFree) {
  FluidConfig cfg;
  cfg.dims = GetParam();
  FluidSolver solver(cfg);
  auto forcing = [](VolumeF& u, VolumeF& v, VolumeF&, VolumeF& s) {
    const Dims d = u.dims();
    u.at(d.x / 2, d.y / 2, d.z / 2) = 3.0f;
    v.at(d.x / 2, d.y / 2, d.z / 2) = -2.0f;
    s.at(d.x / 2, d.y / 2, d.z / 2) = 1.0f;
  };
  for (int t = 0; t < 6; ++t) solver.step(forcing);
  for (const VolumeF* field :
       {&solver.u(), &solver.v(), &solver.w(), &solver.scalar()}) {
    for (float x : field->data()) {
      ASSERT_TRUE(std::isfinite(x));
      ASSERT_LT(std::fabs(x), 100.0f);  // unconditionally stable scheme
    }
  }
  EXPECT_LT(solver.max_divergence(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grids, SolverGridTest,
                         ::testing::Values(Dims{8, 8, 8}, Dims{16, 8, 8},
                                           Dims{12, 16, 8},
                                           Dims{20, 20, 20}));

// --- Renderer: opacity monotonicity ------------------------------------------

double total_luminance(const ImageRgb8& image) {
  double sum = 0.0;
  for (std::uint8_t p : image.pixels) sum += p;
  return sum;
}

class RendererOpacityTest : public ::testing::TestWithParam<double> {};

TEST_P(RendererOpacityTest, LuminanceGrowsWithOpacity) {
  // Unshaded, black background, fixed color: scaling the TF's opacity up
  // can only brighten the image (front-to-back compositing is monotone in
  // per-sample alpha for a fixed color).
  const double scale = GetParam();
  VolumeF v = testing::blob_volume(Dims{20, 20, 20}, {10, 10, 10}, 5.0,
                                   1.0f);
  ColorMap white({{0.0, Rgb{1, 1, 1}}, {1.0, Rgb{1, 1, 1}}});
  RenderSettings s;
  s.width = 40;
  s.height = 40;
  s.shading = false;
  Raycaster caster(s);
  Camera cam(0.5, 0.3, 2.5);

  TransferFunction1D weak(0.0, 1.0);
  weak.add_band(0.3, 1.0, 0.5 * scale);
  TransferFunction1D strong(0.0, 1.0);
  strong.add_band(0.3, 1.0, std::min(1.0, 1.0 * scale));
  double weak_lum = total_luminance(caster.render(v, weak, white, cam));
  double strong_lum = total_luminance(caster.render(v, strong, white, cam));
  EXPECT_GE(strong_lum, weak_lum * 0.999) << "scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, RendererOpacityTest,
                         ::testing::Values(0.2, 0.5, 1.0));

// --- Generators: determinism and labeled-source invariants -------------------

class GeneratorStepTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorStepTest, SwirlFeatureMaskConsistentWithVolume) {
  const int step = GetParam();
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{20, 20, 20};
  SwirlingFlowSource source(cfg);
  VolumeF v = source.generate(step);
  Mask feature = source.feature_mask(step);
  ASSERT_GT(mask_count(feature), 0u);
  // Feature voxels carry values near the decayed peak; specifically every
  // ground-truth voxel holds at least half the step's peak value.
  double peak = source.peak_value(step);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (feature[i]) {
      EXPECT_GE(v[i], 0.5 * peak - 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, GeneratorStepTest,
                         ::testing::Values(0, 10, 23, 41, 62));

// --- IATF key-frame editing ---------------------------------------------------

TEST(IatfEditing, SetKeyFrameReplacesAndRetrains) {
  const int steps = 5;
  Dims d{10, 10, 10};
  auto source = std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0},
      [d](int) { return VolumeF(d, 0.4f); });
  CachedSequence seq(source, 4);
  Iatf iatf(seq);
  TransferFunction1D low(0.0, 1.0);
  low.add_band(0.1, 0.2, 1.0);
  TransferFunction1D high(0.0, 1.0);
  high.add_band(0.7, 0.8, 1.0);
  iatf.add_key_frame(2, low);
  EXPECT_EQ(iatf.training_samples(), 256u);
  iatf.set_key_frame(2, high);  // replace, not append
  EXPECT_EQ(iatf.training_samples(), 256u);
  iatf.train(800);
  TransferFunction1D result = iatf.evaluate(2);
  EXPECT_GT(result.opacity(0.75), 0.5);  // learned the replacement
  EXPECT_LT(result.opacity(0.15), 0.4);  // old band gone from training
}

TEST(IatfEditing, SetKeyFrameAddsWhenMissing) {
  Dims d{8, 8, 8};
  auto source = std::make_shared<CallbackSource>(
      d, 4, std::pair<double, double>{0.0, 1.0},
      [d](int) { return VolumeF(d, 0.5f); });
  CachedSequence seq(source, 4);
  Iatf iatf(seq);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.4, 0.6, 1.0);
  iatf.set_key_frame(1, tf);
  EXPECT_EQ(iatf.key_frames().size(), 1u);
  EXPECT_EQ(iatf.training_samples(), 256u);
}

TEST(IatfEditing, RemoveKeyFrameShrinksTraining) {
  Dims d{8, 8, 8};
  auto source = std::make_shared<CallbackSource>(
      d, 4, std::pair<double, double>{0.0, 1.0},
      [d](int) { return VolumeF(d, 0.5f); });
  CachedSequence seq(source, 4);
  Iatf iatf(seq);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.4, 0.6, 1.0);
  iatf.add_key_frame(0, tf);
  iatf.add_key_frame(3, tf);
  EXPECT_EQ(iatf.training_samples(), 512u);
  EXPECT_TRUE(iatf.remove_key_frame(0));
  EXPECT_EQ(iatf.training_samples(), 256u);
  EXPECT_EQ(iatf.key_frames().size(), 1u);
  EXPECT_FALSE(iatf.remove_key_frame(0));
}

TEST(KeyFrameSetEditing, SetAndRemove) {
  KeyFrameSet set;
  TransferFunction1D a(0.0, 1.0), b(0.0, 1.0);
  a.add_band(0.1, 0.2, 1.0);
  b.add_band(0.8, 0.9, 1.0);
  set.set(5, a);
  EXPECT_EQ(set.size(), 1u);
  set.set(5, b);  // replace in place
  EXPECT_EQ(set.size(), 1u);
  EXPECT_GT(set[0].tf.opacity(0.85), 0.9);
  EXPECT_TRUE(set.remove(5));
  EXPECT_FALSE(set.remove(5));
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace ifet
