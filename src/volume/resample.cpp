#include "volume/resample.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace ifet {

VolumeF downsample2(const VolumeF& volume) {
  const Dims d = volume.dims();
  Dims out_dims{(d.x + 1) / 2, (d.y + 1) / 2, (d.z + 1) / 2};
  VolumeF out(out_dims);
  parallel_for(0, static_cast<std::size_t>(out_dims.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < out_dims.y; ++j) {
      for (int i = 0; i < out_dims.x; ++i) {
        double sum = 0.0;
        int count = 0;
        for (int dk = 0; dk < 2; ++dk) {
          for (int dj = 0; dj < 2; ++dj) {
            for (int di = 0; di < 2; ++di) {
              int fi = 2 * i + di, fj = 2 * j + dj, fk = 2 * k + dk;
              if (!d.contains(fi, fj, fk)) continue;
              sum += volume[volume.linear_index(fi, fj, fk)];
              ++count;
            }
          }
        }
        out[out.linear_index(i, j, k)] =
            static_cast<float>(sum / std::max(1, count));
      }
    }
  });
  return out;
}

VolumeF resample(const VolumeF& volume, Dims target) {
  IFET_REQUIRE(target.x > 0 && target.y > 0 && target.z > 0,
               "resample: target dims must be positive");
  const Dims d = volume.dims();
  VolumeF out(target);
  // Map output voxel centers onto the input's voxel-coordinate range.
  auto map = [](int idx, int out_n, int in_n) {
    if (out_n == 1) return 0.5 * (in_n - 1);
    return static_cast<double>(idx) * (in_n - 1) / (out_n - 1);
  };
  parallel_for(0, static_cast<std::size_t>(target.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    double z = map(k, target.z, d.z);
    for (int j = 0; j < target.y; ++j) {
      double y = map(j, target.y, d.y);
      for (int i = 0; i < target.x; ++i) {
        double x = map(i, target.x, d.x);
        out[out.linear_index(i, j, k)] =
            static_cast<float>(volume.sample(x, y, z));
      }
    }
  });
  return out;
}

std::vector<VolumeF> build_lod_pyramid(const VolumeF& volume,
                                       int max_levels) {
  std::vector<VolumeF> pyramid;
  pyramid.push_back(volume);
  while (max_levels <= 0 ||
         static_cast<int>(pyramid.size()) < max_levels) {
    const Dims d = pyramid.back().dims();
    if (d.x == 1 && d.y == 1 && d.z == 1) break;
    pyramid.push_back(downsample2(pyramid.back()));
    if (max_levels <= 0 && pyramid.back().dims().count() == 1) break;
  }
  return pyramid;
}

Mask downsample2_mask(const Mask& mask, double threshold) {
  const Dims d = mask.dims();
  Dims out_dims{(d.x + 1) / 2, (d.y + 1) / 2, (d.z + 1) / 2};
  Mask out(out_dims);
  for (int k = 0; k < out_dims.z; ++k) {
    for (int j = 0; j < out_dims.y; ++j) {
      for (int i = 0; i < out_dims.x; ++i) {
        int set = 0, count = 0;
        for (int dk = 0; dk < 2; ++dk) {
          for (int dj = 0; dj < 2; ++dj) {
            for (int di = 0; di < 2; ++di) {
              int fi = 2 * i + di, fj = 2 * j + dj, fk = 2 * k + dk;
              if (!d.contains(fi, fj, fk)) continue;
              ++count;
              set += mask[mask.linear_index(fi, fj, fk)] ? 1 : 0;
            }
          }
        }
        out[out.linear_index(i, j, k)] =
            (count > 0 &&
             static_cast<double>(set) / count >= threshold)
                ? 1
                : 0;
      }
    }
  }
  return out;
}

}  // namespace ifet
