// Event detection over a tracking result.
//
// The paper (Sec 5) calls feature tracking "the process of capturing all
// the events for one or more features" and its Fig 9 vortex "moves and
// changes its shape through time and splits near the end". This module
// derives those events from the per-step masks a Tracker produces: each
// step's mask is decomposed into connected components; components of
// consecutive steps are matched by spatial overlap (the tracking
// assumption guarantees overlap for matching features); the bipartite
// match pattern classifies continuation / birth / death / split / merge.
// The result is organized as a feature tree (Chen et al., cited in Sec 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tracking.hpp"
#include "volume/components.hpp"

namespace ifet {

enum class EventType : std::uint8_t {
  kBirth,         ///< Component with no predecessor.
  kDeath,         ///< Component with no successor.
  kContinuation,  ///< 1 predecessor, 1 successor.
  kSplit,         ///< One component overlapping >= 2 at the next step.
  kMerge,         ///< >= 2 components overlapping one at the next step.
};

const char* event_name(EventType type);

/// One node of the feature tree: a component at a given step.
struct FeatureNode {
  int step = 0;
  std::int32_t label = 0;  ///< Component label within the step.
  ComponentInfo info;
  std::vector<int> parents;   ///< Node indices at step-1 with overlap.
  std::vector<int> children;  ///< Node indices at step+1 with overlap.
};

/// A detected event.
struct FeatureEvent {
  EventType type = EventType::kContinuation;
  int step = 0;  ///< Step at which the event is observed.
  int node = 0;  ///< Index into FeatureHistory::nodes.
};

/// The full tracked history: per-step component decomposition, tree edges,
/// and the derived event list.
struct FeatureHistory {
  std::vector<FeatureNode> nodes;
  std::vector<FeatureEvent> events;

  /// Node indices of a given step.
  std::vector<int> nodes_at(int step) const;
  /// Number of components at a step.
  int component_count(int step) const;
  /// Events of a given type.
  std::vector<FeatureEvent> events_of(EventType type) const;
  /// Steps covered (sorted).
  std::vector<int> steps() const;
};

/// Build the history from a tracking result. Components of consecutive
/// steps are connected when they overlap in at least `min_overlap` voxels.
FeatureHistory build_feature_history(const TrackResult& track,
                                     std::size_t min_overlap = 1);

/// Render the feature tree as indented text (for logs and the examples).
std::string format_feature_tree(const FeatureHistory& history);

}  // namespace ifet
