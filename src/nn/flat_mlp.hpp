// Flat batched MLP inference engine.
//
// Mlp::forward is the right shape for training (per-sample backprop needs
// per-layer activations) but the wrong shape for classification: every call
// heap-allocates a ForwardState — one std::vector per layer — and walks
// weights stored as vector<vector<vector<double>>>, so classifying a volume
// costs millions of allocations over cache-hostile pointers. FlatMlp is the
// inference-only mirror: weights copied once into contiguous row-major
// buffers (bias fused as a trailing column), batches of inputs evaluated
// tile-by-tile with inner loops the compiler vectorizes across batch rows,
// and all temporaries in caller-owned Scratch so steady-state inference
// performs zero heap allocations.
//
// Numerical contract: forward_batch is BITWISE IDENTICAL to calling
// Mlp::forward on each row. Each output unit accumulates bias first, then
// the weighted inputs in ascending input order — the exact double-addition
// chain of Mlp::run_forward — and applies the same activation formulas.
// Vectorization happens ACROSS batch rows (independent accumulator chains),
// never inside one row's dot product, so per-sample rounding is unchanged.
// tests/flat_mlp_test.cpp pins this equivalence.
//
// FlatMlpCache layers the rebuild policy on top: get() rehashes the live
// Mlp (Mlp::params_hash) and rebuilds the flat engine only when training
// changed the weights — the same (step, params-hash) invalidation scheme
// DerivedCache uses — so the paper's interactive train-a-little /
// classify-a-little loop pays one rebuild per training burst, not per call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/mlp.hpp"
#include "util/hot_path.hpp"
#include "util/ordered_mutex.hpp"

namespace ifet {

class FlatMlp {
 public:
  /// Rows per internal batch tile. Activations of a tile are held
  /// column-major ([unit][row]) so the inner accumulation loops are
  /// unit-stride across rows; one tile of the widest layer stays
  /// cache-resident (kTileRows * width doubles).
  static constexpr int kTileRows = 64;

  /// Caller-owned inference temporaries. Reusable across calls and across
  /// differing batch sizes (tile buffers are sized by the network's widest
  /// layer, not by the batch); after the first forward_batch no further
  /// allocations happen. Not shareable between concurrent callers — one
  /// Scratch per worker thread.
  struct Scratch {
   private:
    friend class FlatMlp;

    /// Warm-up grow, shared by both forward paths; steady-state calls
    /// (same network or a narrower one) never re-enter the allocator.
    void ensure(std::size_t tile_doubles) {
      if (a.size() < tile_doubles) {
        IFET_HOT_ALLOW("one-time scratch warm-up; amortized to zero");
        a.resize(tile_doubles);
      }
      if (b.size() < tile_doubles) {
        IFET_HOT_ALLOW("one-time scratch warm-up; amortized to zero");
        b.resize(tile_doubles);
      }
    }

    std::vector<double> a, b;  // ping-pong column-major activation tiles
  };

  FlatMlp() = default;

  /// Snapshot `source`'s weights into flat buffers. The FlatMlp is
  /// independent of `source` afterwards (training it does NOT update the
  /// flat copy — rebuild via FlatMlpCache).
  explicit FlatMlp(const Mlp& source);

  bool valid() const { return !layer_sizes_.empty(); }
  int num_inputs() const;
  int num_outputs() const;
  const std::vector<int>& layer_sizes() const { return layer_sizes_; }

  /// params_hash() of the Mlp this engine was built from.
  std::uint64_t source_params_hash() const { return source_hash_; }

  /// Evaluate `n` inputs. `in` is n x num_inputs() row-major; `out` is
  /// n x num_outputs() row-major. Bitwise identical to Mlp::forward per
  /// row; zero heap allocations once `scratch` is warm.
  void forward_batch(const double* in, int n, double* out,
                     Scratch& scratch) const;

  /// Column-major variant: `in` holds feature c contiguously at
  /// in[c*ld + row] (ld >= n), the layout FeatureBlockAssembler's cols
  /// path emits. Skips forward_batch's tile transpose — the accumulation
  /// kernel reads the columns in place — and is otherwise the same bitwise
  /// contract. `out` stays n x num_outputs() row-major.
  void forward_batch_cols(const double* in, int ld, int n, double* out,
                          Scratch& scratch) const;

 private:
  /// Run the layer stack over one tile whose input activations are the
  /// columns cols[c*col_stride + r], r < rows; scatter the output layer
  /// into `dst` (rows x num_outputs() row-major). Uses scratch.a/b as
  /// ping-pong buffers; `cols` may alias scratch.a (the transpose path).
  void run_tile(const double* cols, std::size_t col_stride, int rows,
                double* dst, Scratch& scratch) const;

  struct Layer {
    int fan_in = 0;
    int fan_out = 0;
    Activation activation = Activation::kSigmoid;
    /// fan_out rows of (fan_in + 1) doubles; the bias is the trailing
    /// column of each row.
    std::vector<double> weights;
  };

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
  int max_width_ = 0;
  std::uint64_t source_hash_ = 0;
};

/// Rebuild-on-params-hash-change holder: get() returns a flat engine for
/// the Mlp's current weights, rebuilding only when the hash changed (i.e.
/// the network was trained, resized, or reloaded since the last call).
/// Entries are shared_ptr so a caller's engine stays valid even if another
/// thread triggers a rebuild mid-use (same lifetime rule as DerivedCache).
class FlatMlpCache {
 public:
  FlatMlpCache() = default;
  FlatMlpCache(const FlatMlpCache&) = delete;
  FlatMlpCache& operator=(const FlatMlpCache&) = delete;

  /// The snapshot (weight copy) runs with mutex_ released — `network` is
  /// caller-owned state, and reading it under this cache's lock would
  /// nest a foreign object's synchronization inside ours (and stall every
  /// concurrent classify thread for the rebuild). Two threads racing a
  /// cold/stale slot may both snapshot; the losing copy is discarded.
  std::shared_ptr<const FlatMlp> get(const Mlp& network) const
      IFET_EXCLUDES(mutex_);

  /// Number of flat rebuilds performed so far (test / perf introspection).
  std::size_t rebuilds() const IFET_EXCLUDES(mutex_);

 private:
  mutable OrderedMutex mutex_{MutexRank::kFlatMlpCache};
  mutable std::shared_ptr<const FlatMlp> flat_ IFET_GUARDED_BY(mutex_);
  mutable std::uint64_t hash_ IFET_GUARDED_BY(mutex_) = 0;
  mutable std::size_t rebuilds_ IFET_GUARDED_BY(mutex_) = 0;
};

}  // namespace ifet
