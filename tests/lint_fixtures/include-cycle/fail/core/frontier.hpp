#pragma once
#include "core/tracker.hpp"

struct Frontier {
  Tracker* tracker;
};
