#include "stream/volume_store.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "io/checksum.hpp"
#include "io/compressed.hpp"
#include "io/volume_io.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/io_error.hpp"
#include "util/timer.hpp"
#include "volume/ops.hpp"

namespace ifet {

VolFileSetSource::VolFileSetSource(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
  IFET_REQUIRE(!paths_.empty(), "VolFileSetSource: no files");
  float lo = 0.0f, hi = 0.0f;
  bool first = true;
  for (const auto& path : paths_) {
    VolumeF v = read_vol(path);
    if (first) {
      dims_ = v.dims();
    } else {
      IFET_REQUIRE(v.dims() == dims_,
                   "VolFileSetSource: inconsistent dims in " + path);
    }
    auto [flo, fhi] = ifet::value_range(v);
    lo = first ? flo : std::min(lo, flo);
    hi = first ? fhi : std::max(hi, fhi);
    first = false;
  }
  range_ = {static_cast<double>(lo), static_cast<double>(hi)};
}

VolFileSetSource::VolFileSetSource(std::vector<std::string> paths,
                                   std::pair<double, double> value_range)
    : paths_(std::move(paths)), range_(value_range) {
  IFET_REQUIRE(!paths_.empty(), "VolFileSetSource: no files");
  IFET_REQUIRE(range_.second > range_.first,
               "VolFileSetSource: degenerate value range");
  VolumeF first = read_vol(paths_.front());
  dims_ = first.dims();
}

VolumeF VolFileSetSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "VolFileSetSource: step out of range");
  VolumeF v = read_vol(paths_[static_cast<std::size_t>(step)]);
  IFET_REQUIRE(v.dims() == dims_,
               "VolFileSetSource: file changed dims on re-read: " +
                   paths_[static_cast<std::size_t>(step)]);
  return v;
}

VolumeStore::VolumeStore(std::shared_ptr<const VolumeSource> source,
                         const VolumeStoreConfig& config)
    : source_(std::move(source)),
      config_(config),
      cache_(config.budget_bytes),
      prefetcher_(ThreadPool::global(), cache_,
                  [this](int step) {
                    return load_with_retry(step, /*prefetch_context=*/true);
                  }) {
  IFET_REQUIRE(source_ != nullptr, "VolumeStore requires a source");
  IFET_REQUIRE(source_->num_steps() > 0, "VolumeStore: empty source");
  IFET_REQUIRE(config_.lookahead >= 0,
               "VolumeStore: lookahead must be >= 0");
  IFET_REQUIRE(config_.max_retries >= 0,
               "VolumeStore: max_retries must be >= 0");
  IFET_REQUIRE(config_.retry_backoff_ms >= 0.0,
               "VolumeStore: retry_backoff_ms must be >= 0");
  step_states_.assign(static_cast<std::size_t>(source_->num_steps()),
                      StepState::kUnknown);
}

std::unique_ptr<VolumeStore> VolumeStore::open_cvol(
    const std::string& path, const VolumeStoreConfig& config) {
  return std::make_unique<VolumeStore>(
      std::make_shared<CompressedFileSource>(path), config);
}

std::unique_ptr<VolumeStore> VolumeStore::open_vol_files(
    std::vector<std::string> paths, const VolumeStoreConfig& config) {
  return std::make_unique<VolumeStore>(
      std::make_shared<VolFileSetSource>(std::move(paths)), config);
}

VolumeF VolumeStore::timed_load(int step, bool prefetch_context) {
  // Loads run on the fetching/prefetching thread, so the thread-local
  // checksum counters attribute verification state to THIS step without
  // any cross-thread interference.
  const ChecksumCounters before = checksum_counters();
  Stopwatch timer;
  VolumeF v = source_->generate(step);
  IFET_REQUIRE(v.dims() == source_->dims(),
               "VolumeStore: source produced wrong dimensions");
  const double seconds = timer.seconds();
  const ChecksumCounters after = checksum_counters();
  OrderedMutexLock lock(mutex_);
  ++total_loads_;
  if (!prefetch_context) {
    ++demand_loads_;
    demand_decode_seconds_ += seconds;
  }
  checksum_verified_ += after.verified - before.verified;
  checksum_unverified_ += after.unverified - before.unverified;
  // A procedural source (no disk payload) counts as verified: there was
  // never a byte that could rot.
  step_states_[static_cast<std::size_t>(step)] =
      after.unverified > before.unverified ? StepState::kUnverified
                                           : StepState::kVerified;
  return v;
}

VolumeF VolumeStore::load_with_retry(int step, bool prefetch_context) {
  for (int attempt = 0;; ++attempt) {
    const ChecksumCounters before = checksum_counters();
    try {
      return timed_load(step, prefetch_context);
    } catch (const DeadlineExceeded&) {
      // Ordering contract (util/io_error.hpp): a timeout is NOT a data
      // failure — never retried against the budget that just expired and
      // never quarantines the (healthy) step.
      throw;
    } catch (const NotFoundError&) {
      // A missing step will not appear by retrying.
      note_failure(step, std::current_exception());
      throw;
    } catch (const IoError&) {
      const ChecksumCounters after = checksum_counters();
      {
        OrderedMutexLock lock(mutex_);
        checksum_failures_ += after.mismatches - before.mismatches;
      }
      if (attempt >= config_.max_retries) {
        note_failure(step, std::current_exception());
        throw;
      }
      {
        OrderedMutexLock lock(mutex_);
        ++retries_;
      }
      if (config_.retry_backoff_ms > 0.0) {
        // Deterministic exponential backoff, no jitter: base * 2^attempt —
        // capped by the caller's remaining deadline budget (unlimited for
        // prefetch workers and non-server callers), and a spent budget
        // raises the typed DeadlineExceeded instead of sleeping at all.
        const Deadline deadline = DeadlineScope::current();
        deadline.check("VolumeStore retry backoff");
        const double ms = std::min(
            config_.retry_backoff_ms *
                static_cast<double>(std::uint64_t{1} << attempt),
            deadline.remaining_ms());
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }
    }
  }
}

void VolumeStore::note_failure(int step, std::exception_ptr error) {
  OrderedMutexLock lock(mutex_);
  ++load_failures_;
  quarantine_[step] = error;
  step_states_[static_cast<std::size_t>(step)] = StepState::kQuarantined;
}

std::shared_ptr<const VolumeF> VolumeStore::fetch_resident(int step) {
  // The caller's scoped deadline (unlimited when no scope is installed —
  // see util/deadline.hpp) bounds both blocking paths: the in-flight
  // prefetch wait and the demand decode below.
  const Deadline deadline = DeadlineScope::current();
  auto volume = cache_.lookup(step);
  if (!volume && prefetcher_.wait(step, deadline)) {
    // An in-flight prefetch covered this step; don't re-count hit/miss.
    volume = cache_.lookup_quiet(step);
  }
  if (!volume) {
    // Collect (and discard) any captured async-load failure so a stale
    // record cannot shadow this demand attempt — which retries from a
    // fresh budget on the calling thread and reports its own outcome.
    prefetcher_.take_failure(step);
    deadline.check("VolumeStore demand load");
    volume = cache_.insert(step,
                           load_with_retry(step, /*prefetch_context=*/false),
                           /*from_prefetch=*/false);
    // Re-check AFTER the decode: a budget blown inside the load gives up
    // here instead of doing more work on borrowed time. The bytes were
    // inserted first, so a retry with a fresh budget hits the cache.
    deadline.check("VolumeStore demand load (completed late)");
  }
  return volume;
}

std::shared_ptr<const VolumeF> VolumeStore::fetch(int step) {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "VolumeStore::fetch: step out of range");
  std::exception_ptr quarantined;
  {
    OrderedMutexLock lock(mutex_);
    auto it = quarantine_.find(step);
    if (it != quarantine_.end()) quarantined = it->second;
  }
  if (quarantined) return resolve_unavailable(step, quarantined);

  std::shared_ptr<const VolumeF> volume;
  try {
    volume = fetch_resident(step);
  } catch (const DeadlineExceeded&) {
    // A timeout is not a data failure: never quarantined, never resolved
    // through the FailPolicy — the typed error surfaces to the caller and
    // the same fetch succeeds later with a fresh budget.
    throw;
  } catch (const IoError&) {
    // Retries are exhausted and the step is quarantined; apply the policy.
    return resolve_unavailable(step, std::current_exception());
  }

  int direction;
  {
    OrderedMutexLock lock(mutex_);
    direction = step >= last_fetched_step_ ? 1 : -1;
    last_fetched_step_ = step;
  }
  const Deadline deadline = DeadlineScope::current();
  for (int k = 1; k <= config_.lookahead; ++k) {
    // Lookahead is advisory; don't spend a caller's exhausted budget on it
    // (matters on the synchronous prefetch path, which decodes inline).
    if (deadline.expired()) break;
    prefetch(step + direction * k);
  }
  return volume;
}

std::shared_ptr<const VolumeF> VolumeStore::resolve_unavailable(
    int step, std::exception_ptr error) {
  switch (config_.fail_policy) {
    case FailPolicy::kThrow:
      std::rethrow_exception(error);
    case FailPolicy::kSkipStep: {
      OrderedMutexLock lock(mutex_);
      ++skipped_fetches_;
      return nullptr;
    }
    case FailPolicy::kNearestGood:
      break;
  }
  // Outward search: step-d before step+d, so ties resolve toward data the
  // consumer has already seen (deterministic regardless of cache state).
  for (int d = 1; d < num_steps(); ++d) {
    const int candidates[2] = {step - d, step + d};
    for (int candidate : candidates) {
      if (candidate < 0 || candidate >= num_steps()) continue;
      if (is_quarantined(candidate)) continue;
      try {
        auto volume = fetch_resident(candidate);
        OrderedMutexLock lock(mutex_);
        ++nearest_good_substitutions_;
        return volume;
      } catch (const DeadlineExceeded&) {
        // Budget gone mid-search: stop widening and surface the timeout —
        // the candidate is healthy, substituting nothing is wrong.
        throw;
      } catch (const IoError&) {
        // The candidate just failed (and is now quarantined itself); keep
        // widening the search.
      }
    }
  }
  throw CorruptDataError("VolumeStore: no loadable step near quarantined step " +
                         std::to_string(step));
}

void VolumeStore::prefetch(int step) {
  if (step < 0 || step >= num_steps()) return;
  if (is_quarantined(step)) return;  // fenced off; don't re-load bad data
  if (config_.async_prefetch) {
    prefetcher_.schedule(step);
    return;
  }
  // Synchronous lookahead: deterministic single-threaded path for tests.
  if (cache_.resident(step)) return;
  try {
    cache_.insert(step, load_with_retry(step, /*prefetch_context=*/true),
                  /*from_prefetch=*/true);
  } catch (const DeadlineExceeded&) {
    // The caller's budget ran out during advisory lookahead: nothing is
    // recorded (the step is healthy); the caller's own next blocking
    // operation reports the timeout.
  } catch (const IoError&) {
    // Lookahead is advisory: the failure is recorded (quarantine + stats)
    // and surfaces when the step is actually fetched.
  }
}

void VolumeStore::pin_window(int lo, int hi) {
  lo = std::max(lo, 0);
  hi = std::min(hi, num_steps() - 1);
  cache_.pin_window(lo, hi);
  if (lo > hi) return;
  for (int s = lo; s <= hi; ++s) {
    if (!cache_.resident(s)) prefetch(s);
  }
}

std::shared_ptr<const BrickIndex> VolumeStore::brick_index(int step) {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "VolumeStore::brick_index: step out of range");
  {
    OrderedMutexLock lock(mutex_);
    auto it = bricks_.find(step);
    if (it != bricks_.end()) return it->second;
  }
  // Metadata read / fallback build runs outside the mutex — the fallback
  // decodes a whole step. Racing builders for the same step are harmless:
  // first insert wins, the loser's (identical) index is dropped.
  std::shared_ptr<const BrickIndex> index = source_->brick_metadata(step);
  const bool from_container = index != nullptr;
  if (!from_container) {
    auto volume = fetch(step);
    if (volume == nullptr) return nullptr;  // kSkipStep quarantined step
    index = std::make_shared<const BrickIndex>(BrickIndex::build(*volume));
  }
  OrderedMutexLock lock(mutex_);
  ++(from_container ? brick_metadata_reads_ : brick_builds_);
  auto [pos, inserted] = bricks_.emplace(step, std::move(index));
  (void)inserted;
  return pos->second;
}

std::uint64_t VolumeStore::brick_metadata_reads() const {
  OrderedMutexLock lock(mutex_);
  return brick_metadata_reads_;
}

std::uint64_t VolumeStore::brick_builds() const {
  OrderedMutexLock lock(mutex_);
  return brick_builds_;
}

std::size_t VolumeStore::load_count() const {
  OrderedMutexLock lock(mutex_);
  return total_loads_;
}

StreamStats VolumeStore::stats() const {
  StreamStats out = cache_.stats();
  out.merge(prefetcher_.stats());
  OrderedMutexLock lock(mutex_);
  out.demand_loads = demand_loads_;
  out.demand_decode_seconds = demand_decode_seconds_;
  out.retries = retries_;
  out.load_failures = load_failures_;
  out.checksum_verified = checksum_verified_;
  out.checksum_unverified = checksum_unverified_;
  out.checksum_failures = checksum_failures_;
  out.quarantined_steps = quarantine_.size();
  out.skipped_fetches = skipped_fetches_;
  out.nearest_good_substitutions = nearest_good_substitutions_;
  return out;
}

StepHealth VolumeStore::step_health() const {
  OrderedMutexLock lock(mutex_);
  return StepHealth{step_states_};
}

bool VolumeStore::is_quarantined(int step) const {
  OrderedMutexLock lock(mutex_);
  return quarantine_.count(step) != 0;
}

}  // namespace ifet
