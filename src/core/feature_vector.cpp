#include "core/feature_vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "volume/components.hpp"
#include "volume/ops.hpp"

namespace ifet {

int FeatureVectorSpec::width() const {
  int n = 0;
  if (use_value) ++n;
  if (use_shell) n += shell_samples;
  if (use_position) n += 3;
  if (use_time) ++n;
  if (use_gradient) ++n;
  return n;
}

std::vector<std::string> FeatureVectorSpec::component_names() const {
  std::vector<std::string> names;
  if (use_value) names.push_back("value");
  if (use_shell) {
    for (int s = 0; s < shell_samples; ++s) {
      names.push_back("shell" + std::to_string(s));
    }
  }
  if (use_position) {
    names.push_back("pos_x");
    names.push_back("pos_y");
    names.push_back("pos_z");
  }
  if (use_time) names.push_back("time");
  if (use_gradient) names.push_back("gradient");
  return names;
}

std::vector<Vec3> shell_directions(int count) {
  static const std::vector<Vec3> kAll = [] {
    std::vector<Vec3> dirs;
    // 6 axes.
    dirs.push_back({1, 0, 0});
    dirs.push_back({-1, 0, 0});
    dirs.push_back({0, 1, 0});
    dirs.push_back({0, -1, 0});
    dirs.push_back({0, 0, 1});
    dirs.push_back({0, 0, -1});
    // 8 cube diagonals.
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        for (int sz : {-1, 1}) {
          dirs.push_back(Vec3{static_cast<double>(sx),
                              static_cast<double>(sy),
                              static_cast<double>(sz)}
                             .normalized());
        }
      }
    }
    // 12 edge midpoints.
    const int signs[2] = {-1, 1};
    for (int a : signs) {
      for (int b : signs) {
        dirs.push_back(Vec3{static_cast<double>(a), static_cast<double>(b), 0}
                           .normalized());
        dirs.push_back(Vec3{static_cast<double>(a), 0, static_cast<double>(b)}
                           .normalized());
        dirs.push_back(Vec3{0, static_cast<double>(a), static_cast<double>(b)}
                           .normalized());
      }
    }
    return dirs;
  }();
  IFET_REQUIRE(count > 0 && count <= static_cast<int>(kAll.size()),
               "shell_directions: supported counts are 1..26");
  return {kAll.begin(), kAll.begin() + count};
}

std::vector<double> assemble_feature_vector(const FeatureVectorSpec& spec,
                                            const FeatureContext& context,
                                            int i, int j, int k) {
  IFET_REQUIRE(context.volume != nullptr,
               "assemble_feature_vector: null volume");
  const VolumeF& vol = *context.volume;
  const double span = std::max(1e-12, context.value_hi - context.value_lo);
  auto norm_value = [&](double v) {
    return clamp((v - context.value_lo) / span, 0.0, 1.0);
  };

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(spec.width()));
  if (spec.use_value) {
    out.push_back(norm_value(vol.clamped(i, j, k)));
  }
  if (spec.use_shell) {
    const auto& dirs = shell_directions(spec.shell_samples);
    for (const Vec3& dir : dirs) {
      double x = i + spec.shell_radius * dir.x;
      double y = j + spec.shell_radius * dir.y;
      double z = k + spec.shell_radius * dir.z;
      out.push_back(norm_value(vol.sample(x, y, z)));
    }
  }
  if (spec.use_position) {
    const Dims d = vol.dims();
    out.push_back(static_cast<double>(i) / std::max(1, d.x - 1));
    out.push_back(static_cast<double>(j) / std::max(1, d.y - 1));
    out.push_back(static_cast<double>(k) / std::max(1, d.z - 1));
  }
  if (spec.use_time) {
    out.push_back(static_cast<double>(context.step) /
                  std::max(1, context.num_steps - 1));
  }
  if (spec.use_gradient) {
    // Normalize by the value span; central differences are bounded by it.
    out.push_back(clamp(gradient_at(vol, i, j, k).norm() / span, 0.0, 1.0));
  }
  return out;
}

double derive_shell_radius(const Mask& positive_samples) {
  Labeling labeling = label_components(positive_samples);
  if (labeling.components.empty()) return 3.0;
  double mean_half_extent = 0.0;
  for (const auto& c : labeling.components) {
    double ex = c.bbox_max.x - c.bbox_min.x + 1;
    double ey = c.bbox_max.y - c.bbox_min.y + 1;
    double ez = c.bbox_max.z - c.bbox_min.z + 1;
    mean_half_extent += (ex + ey + ez) / 6.0;
  }
  mean_half_extent /= static_cast<double>(labeling.components.size());
  return clamp(mean_half_extent, 1.5, 6.0);
}

}  // namespace ifet
