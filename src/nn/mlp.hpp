// Multi-layer perceptron trained with feed-forward back-propagation.
//
// Paper Sec 3: "The neural network topology we have used is a three-layer
// perceptron, and it is trained with the Feed-Forward Back-Propagation
// Network (BPN) algorithm" (Werbos 1974; Rumelhart & McClelland 1986).
// We implement the general L-layer case but the library defaults everywhere
// to the paper's three layers (input, one hidden, output). Outputs pass
// through a sigmoid so they read directly as opacity / membership certainty
// in [0, 1].
//
// Sec 6 additionally requires *resizing* the input layer when the user adds
// or removes data properties, transferring the previously learned weights
// for the properties that remain ("the input data for the previous network
// would be transferred to the new network"); see resized_inputs().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ifet {

enum class Activation : std::uint8_t {
  kSigmoid,  ///< 1/(1+e^-x); used for hidden and output layers by default.
  kTanh,     ///< tanh(x); optional hidden-layer alternative.
};

/// Hyperparameters of back-propagation.
struct BackpropConfig {
  double learning_rate = 0.25;
  double momentum = 0.8;  ///< Classic momentum on the weight deltas.
};

class Mlp {
 public:
  Mlp() = default;

  /// Build a network with the given layer sizes, e.g. {3, 8, 1} for the
  /// IATF (inputs <value, cumhist, t>, 8 hidden units, opacity out).
  /// Weights are initialized uniformly in [-r, r] with r = 1/sqrt(fan_in).
  Mlp(std::vector<int> layer_sizes, Rng& rng,
      Activation hidden = Activation::kSigmoid);

  int num_inputs() const;
  int num_outputs() const;
  const std::vector<int>& layer_sizes() const { return layer_sizes_; }
  Activation hidden_activation() const { return hidden_activation_; }

  /// Feed-forward pass. `input.size()` must equal num_inputs().
  std::vector<double> forward(std::span<const double> input) const;

  /// Convenience for single-output networks.
  double forward_scalar(std::span<const double> input) const;

  /// One stochastic gradient step on a single (input, target) pair with
  /// momentum. Returns the pre-update squared error.
  double train_sample(std::span<const double> input,
                      std::span<const double> target,
                      const BackpropConfig& config);

  /// Mean squared error over a batch without updating weights. Reuses one
  /// forward-state scratch across samples (no per-sample allocations).
  double evaluate_mse(const std::vector<std::vector<double>>& inputs,
                      const std::vector<std::vector<double>>& targets) const;

  /// Hash of everything a forward pass depends on: topology, activation,
  /// weights, and biases. Training changes the hash, so caches keyed by it
  /// (FlatMlpCache, DerivedCache entries) invalidate naturally — the same
  /// scheme DerivedCache uses for IATF products.
  std::uint64_t params_hash() const;

  /// Sec 6: derive a network whose input layer holds `kept_inputs.size()`
  /// units; entry i of `kept_inputs` names the old input feeding new input i
  /// (or -1 for a brand-new property, initialized randomly). All other
  /// weights are copied unchanged.
  Mlp resized_inputs(const std::vector<int>& kept_inputs, Rng& rng) const;

  /// Total number of trainable parameters.
  std::size_t parameter_count() const;

  /// Direct parameter access for serialization and gradient checking.
  /// weights()[l][j][i] connects layer-l unit i to layer-(l+1) unit j;
  /// biases()[l][j] is the bias of layer-(l+1) unit j.
  const std::vector<std::vector<std::vector<double>>>& weights() const {
    return weights_;
  }
  std::vector<std::vector<std::vector<double>>>& mutable_weights() {
    return weights_;
  }
  const std::vector<std::vector<double>>& biases() const { return biases_; }
  std::vector<std::vector<double>>& mutable_biases() { return biases_; }

  /// Text (de)serialization; round-trips exactly via hex doubles.
  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  struct ForwardState {
    // activations[l][j]: output of unit j in layer l (layer 0 = inputs).
    std::vector<std::vector<double>> activations;
  };

  ForwardState run_forward(std::span<const double> input) const;
  /// Fills `state` in place, reusing its buffers' capacity — the
  /// allocation-free form evaluate_mse loops over.
  void run_forward_into(std::span<const double> input,
                        ForwardState& state) const;
  double activate(double x, Activation a) const;
  double activate_derivative(double fx, Activation a) const;

  std::vector<int> layer_sizes_;
  Activation hidden_activation_ = Activation::kSigmoid;
  std::vector<std::vector<std::vector<double>>> weights_;
  std::vector<std::vector<double>> biases_;
  // Momentum buffers, same shapes as weights_/biases_.
  std::vector<std::vector<std::vector<double>>> weight_velocity_;
  std::vector<std::vector<double>> bias_velocity_;
};

}  // namespace ifet
