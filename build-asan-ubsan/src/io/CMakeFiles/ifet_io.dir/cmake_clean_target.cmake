file(REMOVE_RECURSE
  "libifet_io.a"
)
