# Empty dependencies file for octree_resample_test.
# This may be replaced when dependencies are built.
