#include "core/iatf.hpp"

#include <array>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <span>

#include "stream/derived_cache.hpp"
#include "util/error.hpp"

namespace ifet {

namespace {
int count_inputs(const IatfConfig& c) {
  int n = 0;
  if (c.use_value) ++n;
  if (c.use_cumulative_histogram) ++n;
  if (c.use_time) ++n;
  return n;
}

// Classic BPN practice: train towards soft targets instead of the sigmoid
// asymptotes. Hard 0/1 targets drive the output units into saturation
// where f'(z) ~ 0, which freezes learning — in particular the network
// could never *unlearn* a key frame the user later revises.
double soft_target(double opacity) { return clamp(opacity, 0.05, 0.95); }
}  // namespace

Iatf::Iatf(const VolumeSequence& sequence, const IatfConfig& config)
    : sequence_(sequence),
      config_(config),
      input_width_(count_inputs(config)),
      network_(),
      normalizer_(),
      trainer_(network_, config.backprop, config.seed ^ 0x5151ULL) {
  IFET_REQUIRE(input_width_ > 0, "Iatf: at least one input must be enabled");
  IFET_REQUIRE(config_.hidden_units > 0, "Iatf: hidden_units must be > 0");
  Rng rng(config_.seed);
  network_ = Mlp({input_width_, config_.hidden_units, 1}, rng);

  // Fixed, known feature ranges: raw value spans the sequence-global range,
  // the cumulative fraction is already in [0,1], time spans the sequence.
  std::vector<double> lo, hi;
  auto [vlo, vhi] = sequence_.value_range();
  if (config_.use_value) {
    lo.push_back(vlo);
    hi.push_back(vhi);
  }
  if (config_.use_cumulative_histogram) {
    lo.push_back(0.0);
    hi.push_back(1.0);
  }
  if (config_.use_time) {
    lo.push_back(0.0);
    hi.push_back(static_cast<double>(sequence_.num_steps() - 1));
  }
  normalizer_ = InputNormalizer(std::move(lo), std::move(hi));
}

std::vector<double> Iatf::make_input(double value, double cumhist_fraction,
                                     int step) const {
  std::vector<double> raw;
  raw.reserve(static_cast<std::size_t>(input_width_));
  if (config_.use_value) raw.push_back(value);
  if (config_.use_cumulative_histogram) raw.push_back(cumhist_fraction);
  if (config_.use_time) raw.push_back(static_cast<double>(step));
  return normalizer_.apply(raw);
}

void Iatf::add_key_frame(int step, const TransferFunction1D& tf) {
  IFET_REQUIRE(step >= 0 && step < sequence_.num_steps(),
               "Iatf: key frame step outside the sequence");
  auto [vlo, vhi] = sequence_.value_range();
  IFET_REQUIRE(tf.value_lo() == vlo && tf.value_hi() == vhi,
               "Iatf: key-frame TF must span the sequence value range");
  key_frames_.add(step, tf);
  const CumulativeHistogram& ch = sequence_.cumulative_histogram(step);
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    const double value = tf.entry_value(e);
    training_set_.add(make_input(value, ch.fraction_at(value), step),
                      {soft_target(tf.opacity_entry(e))});
  }
}

void Iatf::set_key_frame(int step, const TransferFunction1D& tf) {
  IFET_REQUIRE(step >= 0 && step < sequence_.num_steps(),
               "Iatf: key frame step outside the sequence");
  bool exists = false;
  for (const auto& frame : key_frames_.frames()) {
    if (frame.step == step) {
      exists = true;
      break;
    }
  }
  if (!exists) {
    add_key_frame(step, tf);
    return;
  }
  key_frames_.set(step, tf);
  rebuild_training_set();
}

bool Iatf::remove_key_frame(int step) {
  if (!key_frames_.remove(step)) return false;
  rebuild_training_set();
  return true;
}

void Iatf::rebuild_training_set() {
  training_set_.clear();
  for (const auto& frame : key_frames_.frames()) {
    const CumulativeHistogram& ch =
        sequence_.cumulative_histogram(frame.step);
    for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
      const double value = frame.tf.entry_value(e);
      training_set_.add(
          make_input(value, ch.fraction_at(value), frame.step),
          {soft_target(frame.tf.opacity_entry(e))});
    }
  }
}

double Iatf::train(int epochs) {
  IFET_REQUIRE(!training_set_.empty(), "Iatf::train: add key frames first");
  return trainer_.run_epochs(training_set_, epochs);
}

double Iatf::train_for(double budget_ms) {
  IFET_REQUIRE(!training_set_.empty(),
               "Iatf::train_for: add key frames first");
  return trainer_.run_for(training_set_, budget_ms);
}

TransferFunction1D Iatf::evaluate(int step) const {
  IFET_REQUIRE(step >= 0 && step < sequence_.num_steps(),
               "Iatf::evaluate: step out of range");
  auto [vlo, vhi] = sequence_.value_range();
  TransferFunction1D tf(vlo, vhi);
  const CumulativeHistogram& ch = sequence_.cumulative_histogram(step);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  // All 256 entries form one inference batch. The scratch is stack-local —
  // TF synthesis is per step, not per voxel, and a member scratch would
  // race concurrent const evaluate() calls.
  FlatMlp::Scratch scratch;
  constexpr int kEntries = TransferFunction1D::kEntries;
  std::vector<double> inputs(static_cast<std::size_t>(kEntries) *
                             static_cast<std::size_t>(input_width_));
  std::vector<double> opacities(kEntries);
  for (int e = 0; e < kEntries; ++e) {
    const double value = tf.entry_value(e);
    std::array<double, 3> raw{};
    int n = 0;
    if (config_.use_value) raw[static_cast<std::size_t>(n++)] = value;
    if (config_.use_cumulative_histogram) {
      raw[static_cast<std::size_t>(n++)] = ch.fraction_at(value);
    }
    if (config_.use_time) {
      raw[static_cast<std::size_t>(n++)] = static_cast<double>(step);
    }
    normalizer_.apply_into(
        std::span<const double>(raw.data(), static_cast<std::size_t>(n)),
        inputs.data() + static_cast<std::size_t>(e) * input_width_);
  }
  flat->forward_batch(inputs.data(), kEntries, opacities.data(), scratch);
  for (int e = 0; e < kEntries; ++e) {
    tf.set_opacity_entry(e, opacities[e]);
  }
  return tf;
}

std::uint64_t Iatf::params_hash() const {
  // Keyed by what evaluate() actually depends on besides the step: the
  // live network weights (Mlp::params_hash), the input configuration, and
  // the normalizer ranges. Counts alone (epochs run, key-frame count) are
  // NOT enough once this hash keys a DerivedCache SHARED between client
  // sessions: two differently-trained networks with equal counts must
  // never collide, or one tenant would read another's synthesized TFs
  // (docs/SERVER.md). Conversely, two sessions that replayed the same
  // deterministic script reach identical weights and identical hashes —
  // which is exactly the cross-client dedup the server tier wants.
  std::uint64_t h = network_.params_hash();
  h = hash_combine(h, (static_cast<std::uint64_t>(config_.use_value) << 2) |
                          (static_cast<std::uint64_t>(
                               config_.use_cumulative_histogram)
                           << 1) |
                          static_cast<std::uint64_t>(config_.use_time));
  for (std::size_t f = 0; f < normalizer_.width(); ++f) {
    h = hash_combine(h, hash_double(normalizer_.lo(f)));
    h = hash_combine(h, hash_double(normalizer_.hi(f)));
  }
  return h;
}

double Iatf::opacity(double value, int step) const {
  const CumulativeHistogram& ch = sequence_.cumulative_histogram(step);
  return network_.forward_scalar(
      make_input(value, ch.fraction_at(value), step));
}

void Iatf::save(std::ostream& os) const {
  os << "ifet-iatf 1\n";
  os << static_cast<int>(config_.use_value) << ' '
     << static_cast<int>(config_.use_cumulative_histogram) << ' '
     << static_cast<int>(config_.use_time) << ' ' << config_.hidden_units
     << '\n';
  auto [vlo, vhi] = sequence_.value_range();
  os << std::setprecision(17) << vlo << ' ' << vhi << ' '
     << sequence_.num_steps() << '\n';
  network_.save(os);
}

std::unique_ptr<Iatf> Iatf::load(std::istream& is,
                                 const VolumeSequence& sequence) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  IFET_REQUIRE(magic == "ifet-iatf" && version == 1,
               "Iatf::load: not an ifet-iatf v1 stream");
  IatfConfig config;
  int use_value = 0, use_ch = 0, use_time = 0;
  is >> use_value >> use_ch >> use_time >> config.hidden_units;
  config.use_value = use_value != 0;
  config.use_cumulative_histogram = use_ch != 0;
  config.use_time = use_time != 0;
  double vlo = 0.0, vhi = 0.0;
  int num_steps = 0;
  is >> vlo >> vhi >> num_steps;
  IFET_REQUIRE(static_cast<bool>(is), "Iatf::load: truncated header");
  auto [slo, shi] = sequence.value_range();
  IFET_REQUIRE(std::fabs(slo - vlo) < 1e-9 && std::fabs(shi - vhi) < 1e-9,
               "Iatf::load: sequence value range differs from the trained "
               "range");
  IFET_REQUIRE(sequence.num_steps() == num_steps,
               "Iatf::load: sequence step count differs from the trained "
               "count");
  auto out = std::make_unique<Iatf>(sequence, config);
  out->network_ = Mlp::load(is);
  IFET_REQUIRE(out->network_.num_inputs() == out->input_width_,
               "Iatf::load: network width inconsistent with input flags");
  return out;
}

}  // namespace ifet
