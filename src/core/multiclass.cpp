#include "core/multiclass.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {

namespace {

// Matches DataSpaceClassifier::kClassifyBatchSize; see its rationale.
constexpr int kBatch = 256;

// Batched k,j,i sweep shared by the volume passes: per worker range,
// assemble kBatch-voxel feature blocks, run them through `flat`, and hand
// each batch's scores (rows x out_width, row-major) to `emit` along with
// the linear index of the batch's first voxel. The sweep is x-fastest, so
// batches cover contiguous linear-index spans.
template <typename Emit>
void batched_sweep(const Dims& d, const FeatureBlockAssembler& assembler,
                   const FlatMlp& flat, int out_width, Emit&& emit) {
  const int feat_width = assembler.width();
  parallel_for_ranges(
      0, static_cast<std::size_t>(d.z), [&](std::size_t k0, std::size_t k1) {
        FlatMlp::Scratch scratch;
        std::vector<Index3> coords(kBatch);
        std::vector<double> features(static_cast<std::size_t>(kBatch) *
                                     feat_width);
        std::vector<double> scores(static_cast<std::size_t>(kBatch) *
                                   out_width);
        int pending = 0;
        std::size_t flush_base =
            static_cast<std::size_t>(d.x) * static_cast<std::size_t>(d.y) * k0;
        auto flush = [&] {
          if (pending == 0) return;
          // Column-major batch (see DataSpaceClassifier::classify).
          assembler.assemble_feature_cols(coords.data(), pending,
                                          features.data(), kBatch);
          flat.forward_batch_cols(features.data(), kBatch, pending,
                                  scores.data(), scratch);
          emit(flush_base, pending, scores.data());
          flush_base += static_cast<std::size_t>(pending);
          pending = 0;
        };
        for (int k = static_cast<int>(k0); k < static_cast<int>(k1); ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              coords[pending] = {i, j, k};
              if (++pending == kBatch) flush();
            }
          }
        }
        flush();
      });
}

}  // namespace

MultiClassClassifier::MultiClassClassifier(int num_classes, int num_steps,
                                           double value_lo, double value_hi,
                                           const MultiClassConfig& config)
    : config_(config),
      num_classes_(num_classes),
      num_steps_(num_steps),
      value_lo_(value_lo),
      value_hi_(value_hi),
      network_(),
      trainer_(network_, config.backprop, config.seed ^ 0x1357ULL) {
  IFET_REQUIRE(num_classes_ >= 2, "MultiClassClassifier: need >= 2 classes");
  IFET_REQUIRE(num_steps_ > 0, "MultiClassClassifier: need steps");
  IFET_REQUIRE(value_hi_ > value_lo_,
               "MultiClassClassifier: degenerate value range");
  Rng rng(config_.seed);
  network_ = Mlp({config_.spec.width(), config_.hidden_units, num_classes_},
                 rng);
}

FeatureContext MultiClassClassifier::context_for(const VolumeF& volume,
                                                 int step) const {
  return FeatureContext{&volume, step, num_steps_, value_lo_, value_hi_};
}

void MultiClassClassifier::add_samples(
    const VolumeF& volume, int step,
    const std::vector<ClassSample>& painted) {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "MultiClassClassifier: step out of range");
  FeatureContext ctx = context_for(volume, step);
  for (const ClassSample& sample : painted) {
    IFET_REQUIRE(volume.dims().contains(sample.voxel),
                 "MultiClassClassifier: painted voxel outside the volume");
    IFET_REQUIRE(sample.class_id >= 0 && sample.class_id < num_classes_,
                 "MultiClassClassifier: class id out of range");
    std::vector<double> target(static_cast<std::size_t>(num_classes_), 0.0);
    target[static_cast<std::size_t>(sample.class_id)] = 1.0;
    training_set_.add(
        assemble_feature_vector(config_.spec, ctx, sample.voxel.x,
                                sample.voxel.y, sample.voxel.z),
        std::move(target));
  }
}

double MultiClassClassifier::train(int epochs) {
  IFET_REQUIRE(!training_set_.empty(),
               "MultiClassClassifier::train: paint samples first");
  return trainer_.run_epochs(training_set_, epochs);
}

double MultiClassClassifier::train_for(double budget_ms) {
  IFET_REQUIRE(!training_set_.empty(),
               "MultiClassClassifier::train_for: paint samples first");
  return trainer_.run_for(training_set_, budget_ms);
}

std::vector<double> MultiClassClassifier::classify_voxel(
    const VolumeF& volume, int step, int i, int j, int k) const {
  FeatureContext ctx = context_for(volume, step);
  return network_.forward(
      assemble_feature_vector(config_.spec, ctx, i, j, k));
}

VolumeF MultiClassClassifier::class_certainty(const VolumeF& volume,
                                              int step, int class_id) const {
  IFET_REQUIRE(class_id >= 0 && class_id < num_classes_,
               "class_certainty: class id out of range");
  const Dims d = volume.dims();
  VolumeF out(d);
  const FeatureContext ctx = context_for(volume, step);
  const FeatureBlockAssembler assembler(config_.spec, ctx);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  batched_sweep(d, assembler, *flat, num_classes_,
                [&](std::size_t base, int rows, const double* scores) {
                  for (int r = 0; r < rows; ++r) {
                    out[base + static_cast<std::size_t>(r)] =
                        static_cast<float>(
                            scores[static_cast<std::size_t>(r) * num_classes_ +
                                   class_id]);
                  }
                });
  return out;
}

Volume<std::uint8_t> MultiClassClassifier::label_volume(const VolumeF& volume,
                                                        int step) const {
  const Dims d = volume.dims();
  Volume<std::uint8_t> out(d);
  const FeatureContext ctx = context_for(volume, step);
  const FeatureBlockAssembler assembler(config_.spec, ctx);
  const std::shared_ptr<const FlatMlp> flat = flat_cache_.get(network_);
  batched_sweep(
      d, assembler, *flat, num_classes_,
      [&](std::size_t base, int rows, const double* scores) {
        for (int r = 0; r < rows; ++r) {
          const double* row =
              scores + static_cast<std::size_t>(r) * num_classes_;
          // Strict > keeps the first of equal maxima, matching the
          // std::max_element tie rule of the scalar path.
          int best = 0;
          for (int c = 1; c < num_classes_; ++c) {
            if (row[c] > row[best]) best = c;
          }
          out[base + static_cast<std::size_t>(r)] =
              static_cast<std::uint8_t>(best);
        }
      });
  return out;
}

Mask MultiClassClassifier::class_mask(const VolumeF& volume, int step,
                                      int class_id) const {
  IFET_REQUIRE(class_id >= 0 && class_id < num_classes_,
               "class_mask: class id out of range");
  Volume<std::uint8_t> labels = label_volume(volume, step);
  Mask out(volume.dims());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[i] = labels[i] == static_cast<std::uint8_t>(class_id) ? 1 : 0;
  }
  return out;
}

}  // namespace ifet
