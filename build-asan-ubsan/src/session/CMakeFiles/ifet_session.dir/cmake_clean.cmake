file(REMOVE_RECURSE
  "CMakeFiles/ifet_session.dir/session.cpp.o"
  "CMakeFiles/ifet_session.dir/session.cpp.o.d"
  "CMakeFiles/ifet_session.dir/tf_session.cpp.o"
  "CMakeFiles/ifet_session.dir/tf_session.cpp.o.d"
  "libifet_session.a"
  "libifet_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
