// One-dimensional transfer functions (paper Sec 4.1).
//
// A TransferFunction1D maps a scalar data value to opacity through a
// 256-entry lookup table over a fixed value range — the exact structure the
// paper's user draws per key frame and the exact structure the IATF
// synthesizes per time step. Color comes from a separate ColorMap: Sec 7
// mandates that the learning methods "only apply to the opacity, when color
// is assigned by the original data value", so color stays constant over time
// while opacity adapts.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "math/vec.hpp"

namespace ifet {

/// RGB color with components in [0, 1].
struct Rgb {
  double r = 0.0, g = 0.0, b = 0.0;
};

/// Piecewise-linear value -> color map (constant over time, per Sec 7).
class ColorMap {
 public:
  /// Default: blue -> cyan -> yellow -> red "heat" ramp over [0, 1].
  ColorMap();

  /// Control points as (position in [0,1], color) pairs, sorted by position.
  explicit ColorMap(std::vector<std::pair<double, Rgb>> stops);

  /// Color for a normalized position in [0, 1].
  Rgb at(double t) const;

 private:
  std::vector<std::pair<double, Rgb>> stops_;
};

class TransferFunction1D {
 public:
  static constexpr int kEntries = 256;

  /// All-transparent TF over the value range [lo, hi].
  TransferFunction1D(double value_lo, double value_hi);

  double value_lo() const { return lo_; }
  double value_hi() const { return hi_; }

  /// Data value at the center of entry `i`.
  double entry_value(int i) const;
  /// Entry index for a data value (clamped).
  int entry_of(double value) const;

  /// Opacity of entry `i`.
  double opacity_entry(int i) const { return opacity_[static_cast<size_t>(i)]; }
  void set_opacity_entry(int i, double alpha);

  /// Opacity for a data value (nearest-entry lookup, like a 1D texture).
  double opacity(double value) const;

  /// Author a trapezoid "tent": opacity ramps 0 -> peak over [v0, v1],
  /// holds over [v1, v2], ramps back to 0 over [v2, v3]. This is the shape
  /// the paper's users draw to select a value band of interest.
  void add_trapezoid(double v0, double v1, double v2, double v3, double peak);

  /// Convenience box: peak opacity inside [lo, hi], zero outside, with a
  /// small linear skirt of `skirt` values on both sides.
  void add_band(double lo, double hi, double peak, double skirt = 0.0);

  /// Multiply every entry by `s` (clamped to [0,1]).
  void scale_opacity(double s);

  /// Set of entries with opacity above `threshold`, as value intervals.
  std::vector<std::pair<double, double>> opaque_intervals(
      double threshold) const;

  /// Linear interpolation of two TFs defined over the same range — the
  /// conventional baseline the IATF is compared against in Fig 3.
  static TransferFunction1D interpolate(const TransferFunction1D& a,
                                        const TransferFunction1D& b, double t);

 private:
  double lo_, hi_;
  std::array<double, kEntries> opacity_{};
};

/// A user-authored transfer function pinned to a time step (paper: key frame).
struct KeyFrameTf {
  int step = 0;
  TransferFunction1D tf;
};

/// Ordered collection of key frames; the IATF's training source.
class KeyFrameSet {
 public:
  void add(int step, TransferFunction1D tf);

  /// Upsert: replace the TF of an existing key frame or add a new one
  /// (the user revising a key frame during the interactive loop).
  void set(int step, TransferFunction1D tf);

  /// Remove the key frame at `step`; returns false if absent.
  bool remove(int step);

  std::size_t size() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }
  const KeyFrameTf& operator[](std::size_t i) const { return frames_[i]; }
  const std::vector<KeyFrameTf>& frames() const { return frames_; }

  /// The two key frames bracketing `step` plus the interpolation parameter;
  /// clamps outside the covered range. Requires at least one frame.
  TransferFunction1D interpolate_at(int step) const;

 private:
  std::vector<KeyFrameTf> frames_;  // kept sorted by step
};

}  // namespace ifet
