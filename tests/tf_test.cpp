#include <gtest/gtest.h>

#include "tf/transfer_function.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

TEST(TransferFunction, StartsTransparent) {
  TransferFunction1D tf(0.0, 1.0);
  for (int i = 0; i < TransferFunction1D::kEntries; ++i) {
    EXPECT_DOUBLE_EQ(tf.opacity_entry(i), 0.0);
  }
}

TEST(TransferFunction, RejectsDegenerateRange) {
  EXPECT_THROW(TransferFunction1D(1.0, 1.0), Error);
  EXPECT_THROW(TransferFunction1D(2.0, 1.0), Error);
}

TEST(TransferFunction, EntryValueAndEntryOfAgree) {
  TransferFunction1D tf(-2.0, 6.0);
  for (int i = 0; i < TransferFunction1D::kEntries; ++i) {
    EXPECT_EQ(tf.entry_of(tf.entry_value(i)), i);
  }
  EXPECT_EQ(tf.entry_of(-100.0), 0);
  EXPECT_EQ(tf.entry_of(100.0), TransferFunction1D::kEntries - 1);
}

TEST(TransferFunction, AddBandSetsPlateau) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.4, 0.6, 0.8);
  EXPECT_NEAR(tf.opacity(0.5), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(tf.opacity(0.1), 0.0);
  EXPECT_DOUBLE_EQ(tf.opacity(0.9), 0.0);
}

TEST(TransferFunction, TrapezoidRampsLinearly) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_trapezoid(0.2, 0.4, 0.6, 0.8, 1.0);
  EXPECT_DOUBLE_EQ(tf.opacity(0.1), 0.0);
  EXPECT_NEAR(tf.opacity(0.3), 0.5, 0.02);
  EXPECT_NEAR(tf.opacity(0.5), 1.0, 1e-12);
  EXPECT_NEAR(tf.opacity(0.7), 0.5, 0.02);
  EXPECT_DOUBLE_EQ(tf.opacity(0.9), 0.0);
}

TEST(TransferFunction, TrapezoidValidatesCorners) {
  TransferFunction1D tf(0.0, 1.0);
  EXPECT_THROW(tf.add_trapezoid(0.5, 0.4, 0.6, 0.8, 1.0), Error);
}

TEST(TransferFunction, BandsComposeWithMax) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.2, 0.4, 0.5);
  tf.add_band(0.3, 0.5, 0.9);
  EXPECT_NEAR(tf.opacity(0.35), 0.9, 1e-12);  // max wins in the overlap
  EXPECT_NEAR(tf.opacity(0.25), 0.5, 1e-12);
}

TEST(TransferFunction, ScaleOpacityClamps) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.0, 1.0, 0.6);
  tf.scale_opacity(2.0);
  EXPECT_DOUBLE_EQ(tf.opacity(0.5), 1.0);
  tf.scale_opacity(0.25);
  EXPECT_DOUBLE_EQ(tf.opacity(0.5), 0.25);
}

TEST(TransferFunction, OpaqueIntervalsFindBands) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.1, 0.2, 1.0);
  tf.add_band(0.6, 0.8, 1.0);
  auto intervals = tf.opaque_intervals(0.5);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_NEAR(intervals[0].first, 0.1, 0.01);
  EXPECT_NEAR(intervals[0].second, 0.2, 0.01);
  EXPECT_NEAR(intervals[1].first, 0.6, 0.01);
  EXPECT_NEAR(intervals[1].second, 0.8, 0.01);
}

TEST(TransferFunction, InterpolationIsEntrywise) {
  TransferFunction1D a(0.0, 1.0), b(0.0, 1.0);
  a.add_band(0.2, 0.3, 1.0);
  b.add_band(0.7, 0.8, 1.0);
  TransferFunction1D mid = TransferFunction1D::interpolate(a, b, 0.5);
  // Linear interpolation leaves BOTH bands at half opacity — the Fig 3
  // failure: instead of one moved band, two weakened ones.
  EXPECT_NEAR(mid.opacity(0.25), 0.5, 1e-12);
  EXPECT_NEAR(mid.opacity(0.75), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mid.opacity(0.5), 0.0);
}

TEST(TransferFunction, InterpolationRequiresSameRange) {
  TransferFunction1D a(0.0, 1.0), b(0.0, 2.0);
  EXPECT_THROW(TransferFunction1D::interpolate(a, b, 0.5), Error);
}

TEST(ColorMap, DefaultRampEndpoints) {
  ColorMap map;
  Rgb lo = map.at(0.0);
  Rgb hi = map.at(1.0);
  EXPECT_GT(lo.b, lo.r);  // cold end is blue
  EXPECT_GT(hi.r, hi.b);  // hot end is red
}

TEST(ColorMap, InterpolatesBetweenStops) {
  ColorMap map({{0.0, Rgb{0, 0, 0}}, {1.0, Rgb{1, 1, 1}}});
  Rgb mid = map.at(0.5);
  EXPECT_NEAR(mid.r, 0.5, 1e-12);
  EXPECT_NEAR(mid.g, 0.5, 1e-12);
}

TEST(ColorMap, ClampsOutsideUnit) {
  ColorMap map({{0.0, Rgb{0, 0, 0}}, {1.0, Rgb{1, 1, 1}}});
  EXPECT_DOUBLE_EQ(map.at(-3.0).r, 0.0);
  EXPECT_DOUBLE_EQ(map.at(3.0).r, 1.0);
}

TEST(ColorMap, RejectsUnsortedStops) {
  EXPECT_THROW(ColorMap({{0.5, Rgb{}}, {0.2, Rgb{}}}), Error);
  EXPECT_THROW(ColorMap(std::vector<std::pair<double, Rgb>>{}), Error);
}

TEST(KeyFrameSet, KeepsFramesSorted) {
  KeyFrameSet set;
  TransferFunction1D tf(0.0, 1.0);
  set.add(50, tf);
  set.add(10, tf);
  set.add(30, tf);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0].step, 10);
  EXPECT_EQ(set[1].step, 30);
  EXPECT_EQ(set[2].step, 50);
}

TEST(KeyFrameSet, RejectsDuplicatesAndMixedRanges) {
  KeyFrameSet set;
  set.add(10, TransferFunction1D(0.0, 1.0));
  EXPECT_THROW(set.add(10, TransferFunction1D(0.0, 1.0)), Error);
  EXPECT_THROW(set.add(20, TransferFunction1D(0.0, 2.0)), Error);
}

TEST(KeyFrameSet, InterpolateAtBlendsAndClamps) {
  KeyFrameSet set;
  TransferFunction1D a(0.0, 1.0), b(0.0, 1.0);
  a.add_band(0.0, 1.0, 0.0);
  b.add_band(0.0, 1.0, 1.0);
  set.add(10, a);
  set.add(20, b);
  EXPECT_NEAR(set.interpolate_at(15).opacity(0.5), 0.5, 0.01);
  EXPECT_NEAR(set.interpolate_at(0).opacity(0.5), 0.0, 1e-12);
  EXPECT_NEAR(set.interpolate_at(99).opacity(0.5), 1.0, 1e-12);
}

TEST(KeyFrameSet, InterpolateAtEmptyThrows) {
  KeyFrameSet set;
  EXPECT_THROW(set.interpolate_at(5), Error);
}

}  // namespace
}  // namespace ifet
