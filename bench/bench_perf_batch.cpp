// Section 8 reproduction: batch extraction over independent time steps.
//
// Paper: "the processing of each time step is completely independent of
// other time steps [so] it is feasible and desirable to employ a large PC
// cluster to conduct the final feature extraction ... concurrently." This
// bench runs the shared-memory batch driver over a step range and reports
// step throughput; on a many-core host wall time is a fraction of the
// per-step sum (on this single-core CI box the numbers coincide — the
// decomposition and accounting are what is exercised).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/batch.hpp"
#include "flowsim/datasets.hpp"
#include "volume/ops.hpp"

namespace {

using namespace ifet;

void BM_BatchExtraction(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = steps;
  SwirlingFlowSource source(cfg);
  for (auto _ : state) {
    BatchReport report = run_batch_extraction(
        source, 0, steps - 1, [&](const VolumeF& v, int step) {
          float lo = static_cast<float>(source.peak_value(step) * 0.5);
          return threshold_mask(v, lo, 1.0f);
        });
    benchmark::DoNotOptimize(report.steps.data());
    state.counters["speedup_sum_over_wall"] =
        report.cpu_step_seconds / std::max(1e-9, report.wall_seconds);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * steps,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchExtraction)->Arg(4)->Arg(16)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
