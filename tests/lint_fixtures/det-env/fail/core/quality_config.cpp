// FAIL fixture: an IFET_DETERMINISTIC root reads the launch environment
// through a reachable helper — two runs of the same binary with
// different environments (or locales) would disagree.
#include <cstdlib>

#define IFET_DETERMINISTIC

namespace fixture {

class QualityConfig {
 public:
  IFET_DETERMINISTIC int quality() const { return level(); }

 private:
  int level() const {
    const char* env = std::getenv("FIXTURE_QUALITY");  // launch env
    return env == nullptr ? 1 : static_cast<int>(env[0]) - 48;
  }
};

}  // namespace fixture
