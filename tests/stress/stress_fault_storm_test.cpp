// Fault-storm stress tests, written for ThreadSanitizer (the tsan
// preset).
//
// Concurrent demand fetches race the async prefetcher while the source
// injects transient faults, so retry bookkeeping, the prefetcher's
// captured-failure map, and the quarantine table are all hammered from
// several threads at once. Under TSan any unsynchronized counter bump or
// map mutation fails the test; in plain builds these are fast checks that
// the failure paths stay deterministic under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "stream/fault_injection.hpp"
#include "stream/volume_store.hpp"
#include "util/io_error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{4, 4, 4};
constexpr std::size_t kStepBytes = 64 * sizeof(float);
constexpr int kSteps = 24;

std::shared_ptr<CallbackSource> step_source() {
  return std::make_shared<CallbackSource>(
      kDims, kSteps, std::pair<double, double>{0.0, kSteps}, [](int step) {
        VolumeF v(kDims);
        v.fill(static_cast<float>(step));
        return v;
      });
}

TEST(FaultStormStress, TransientFaultsUnderConcurrentFetches) {
  // Every step fails twice transiently; with max_retries=2 every fetch
  // from every thread must still produce the right step's content, and
  // nothing may quarantine.
  auto faulty = std::make_shared<FaultInjectingSource>(
      step_source(), std::vector<FaultSpec>{
                         {FaultSpec::kAllSteps, FaultKind::kTransient, 2}});
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 4 * kStepBytes;
  cfg.lookahead = 2;
  cfg.async_prefetch = true;
  cfg.max_retries = 2;
  VolumeStore store(faulty, cfg);

  constexpr int kThreads = 6;
  std::atomic<int> bad_values{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&store, &bad_values, t] {
      for (int pass = 0; pass < 20; ++pass) {
        for (int s = 0; s < kSteps; ++s) {
          const int step = (t % 2 == 0) ? s : kSteps - 1 - s;
          auto v = store.fetch(step);
          if (v == nullptr || v->at(0, 0, 0) != static_cast<float>(step)) {
            bad_values.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad_values.load(), 0);
  const StreamStats stats = store.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.load_failures, 0u);
  EXPECT_EQ(stats.quarantined_steps, 0u);
}

TEST(FaultStormStress, QuarantineUnderSkipPolicyStaysConsistent) {
  // A permanently corrupt step in the middle of the scan: every thread
  // must see nullptr for it (kSkipStep) and correct data everywhere else,
  // no matter who trips the quarantine first or how often the prefetcher
  // touches it.
  constexpr int kBadStep = 11;
  auto faulty = std::make_shared<FaultInjectingSource>(
      step_source(),
      std::vector<FaultSpec>{{kBadStep, FaultKind::kCorrupt, 1}});
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 4 * kStepBytes;
  cfg.lookahead = 2;
  cfg.async_prefetch = true;
  cfg.max_retries = 1;
  cfg.fail_policy = FailPolicy::kSkipStep;
  VolumeStore store(faulty, cfg);

  constexpr int kThreads = 6;
  std::atomic<int> bad_values{0};
  std::atomic<int> bad_skips{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&store, &bad_values, &bad_skips, t] {
      for (int pass = 0; pass < 20; ++pass) {
        for (int s = 0; s < kSteps; ++s) {
          const int step = (t % 2 == 0) ? s : kSteps - 1 - s;
          auto v = store.fetch(step);
          if (step == kBadStep) {
            if (v != nullptr) bad_skips.fetch_add(1);
          } else if (v == nullptr ||
                     v->at(0, 0, 0) != static_cast<float>(step)) {
            bad_values.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad_values.load(), 0);
  EXPECT_EQ(bad_skips.load(), 0);
  EXPECT_TRUE(store.is_quarantined(kBadStep));
  const StreamStats stats = store.stats();
  EXPECT_EQ(stats.quarantined_steps, 1u);
  EXPECT_GT(stats.skipped_fetches, 0u);
  EXPECT_EQ(store.step_health().quarantined(), std::vector<int>{kBadStep});
}

TEST(FaultStormStress, ThrowingPrefetchesRaceDemandFetches) {
  // Threads alternate prefetch() and fetch() over steps whose first load
  // throws a plain Error on the worker: the captured-failure handoff in
  // the prefetcher races the demand path's reload. Every fetch must
  // eventually return correct data — a deadlock here hangs the test.
  std::vector<std::unique_ptr<std::atomic<int>>> load_counts;
  load_counts.reserve(kSteps);
  for (int s = 0; s < kSteps; ++s) {
    load_counts.push_back(std::make_unique<std::atomic<int>>(0));
  }
  auto source = std::make_shared<CallbackSource>(
      kDims, kSteps, std::pair<double, double>{0.0, kSteps},
      [&load_counts](int step) {
        if (load_counts[static_cast<std::size_t>(step)]->fetch_add(1) == 0) {
          throw TransientIoError("first load fails");
        }
        VolumeF v(kDims);
        v.fill(static_cast<float>(step));
        return v;
      });
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 6 * kStepBytes;
  cfg.lookahead = 1;
  cfg.async_prefetch = true;
  cfg.max_retries = 3;
  VolumeStore store(source, cfg);

  constexpr int kThreads = 6;
  std::atomic<int> bad_values{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&store, &bad_values, t] {
      for (int pass = 0; pass < 10; ++pass) {
        for (int s = 0; s < kSteps; ++s) {
          const int step = (s + t * 4) % kSteps;
          store.prefetch((step + 1) % kSteps);
          auto v = store.fetch(step);
          if (v == nullptr || v->at(0, 0, 0) != static_cast<float>(step)) {
            bad_values.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad_values.load(), 0);
  EXPECT_EQ(store.stats().quarantined_steps, 0u);
}

}  // namespace
}  // namespace ifet
