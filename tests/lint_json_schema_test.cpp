// Golden schema for ifet_lint's JSON findings (docs/STATIC_ANALYSIS.md).
//
// CI consumes the --format=json artifact (ci_check.sh archives one per
// lint stage), so the per-finding shape is a contract: every pass —
// conventions, lock-order, layering, hot-path, determinism — must emit
// {rule, file, line, symbol, chain, baseline_suppressed, message} for
// every finding. Passes that have no symbol or chain still emit the keys
// (empty string), so consumers can index unconditionally. The suite runs
// the linter once over one fail fixture per pass family and checks each
// emitted finding line structurally.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string run_lint(const std::string& args, int* exit_code) {
  const std::string cmd =
      std::string(IFET_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  std::string output;
  if (pipe == nullptr) return output;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) output.append(buf, n);
  const int status = pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

/// One fail fixture per pass family, so the combined run exercises every
/// pass's Finding-emission path in a single invocation.
std::string family_dirs() {
  const char* fixtures[] = {"raw-rand", "lock-order-cycle",
                            "layer-violation", "hot-path-alloc",
                            "det-rand-time"};
  std::string dirs;
  for (const char* f : fixtures) {
    dirs += std::string(IFET_LINT_FIXTURES) + "/" + f + "/fail ";
  }
  return dirs;
}

TEST(LintJsonSchemaTest, EveryPassEmitsTheFullFindingSchema) {
  int exit_code = -1;
  const std::string output = run_lint("--format=json " + family_dirs(),
                                      &exit_code);
  // All five families fire: conventions|lock-order|layering|hot-path|det.
  EXPECT_EQ(exit_code, 1 | 2 | 4 | 8 | 16) << output;

  const char* keys[] = {"\"rule\": ",    "\"file\": \"",
                        "\"line\": ",    "\"symbol\": \"",
                        "\"chain\": \"", "\"baseline_suppressed\": ",
                        "\"message\": \""};
  std::istringstream lines(output);
  std::string line;
  std::size_t findings = 0;
  while (std::getline(lines, line)) {
    if (line.find("{\"rule\":") == std::string::npos) continue;
    ++findings;
    for (const char* key : keys) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "finding missing " << key << ": " << line;
    }
  }
  EXPECT_GE(findings, 5u) << output;

  // Each family's rule id appears at least once, so no pass bypassed the
  // shared Finding struct.
  const char* rules[] = {"\"rule\": \"raw-rand\"",
                         "\"rule\": \"lock-order-cycle\"",
                         "\"rule\": \"layer-violation\"",
                         "\"rule\": \"hot-path-alloc\"",
                         "\"rule\": \"det-rand-time\""};
  for (const char* rule : rules) {
    EXPECT_NE(output.find(rule), std::string::npos) << output;
  }
}

TEST(LintJsonSchemaTest, CallgraphFindingsPopulateSymbolAndChain) {
  int exit_code = -1;
  const std::string output = run_lint(
      "--format=json --only=det " + std::string(IFET_LINT_FIXTURES) +
          "/det-rand-time/fail",
      &exit_code);
  EXPECT_EQ(exit_code, 16) << output;
  // The callgraph-backed passes fill symbol and chain with real content,
  // not just the empty-string placeholders.
  EXPECT_NE(output.find("\"symbol\": \"Jitter::noise\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"chain\": \"Jitter::sample -> Jitter::noise\""),
            std::string::npos)
      << output;
}

TEST(LintJsonSchemaTest, TopLevelKeysAreStable) {
  int exit_code = -1;
  const std::string output = run_lint(
      "--format=json " + std::string(IFET_LINT_FIXTURES) + "/catch-all/pass",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("\"files_scanned\": "), std::string::npos) << output;
  EXPECT_NE(output.find("\"baseline_suppressed\": "), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"exit_code\": 0"), std::string::npos) << output;
  EXPECT_NE(output.find("\"findings\": []"), std::string::npos) << output;
}

}  // namespace
