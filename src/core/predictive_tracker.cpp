#include "core/predictive_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

std::vector<int> PredictiveTrack::ambiguous_steps() const {
  std::vector<int> out;
  for (const auto& s : steps) {
    if (s.candidates >= 2) out.push_back(s.step);
  }
  return out;
}

PredictiveTracker::PredictiveTracker(const VolumeSequence& sequence,
                                     const TrackingCriterion& criterion,
                                     const PredictiveTrackerConfig& config)
    : sequence_(sequence), criterion_(criterion), config_(config) {
  IFET_REQUIRE(config.centroid_tolerance > 0.0 &&
                   config.size_ratio_tolerance >= 1.0,
               "PredictiveTracker: invalid tolerances");
}

Mask PredictiveTracker::criterion_mask(int step) const {
  const VolumeF& volume = sequence_.step(step);
  Mask mask(volume.dims());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    mask[i] = criterion_.accept(step, volume[i]) ? 1 : 0;
  }
  return mask;
}

std::vector<ComponentInfo> PredictiveTracker::components_at(int step) const {
  Labeling labeling = label_components(criterion_mask(step));
  std::vector<ComponentInfo> out;
  for (const auto& c : labeling.components) {
    if (c.voxel_count >= config_.min_component_voxels) out.push_back(c);
  }
  return out;
}

PredictiveTrack PredictiveTracker::track(Index3 seed, int seed_step,
                                         int last_step) const {
  IFET_REQUIRE(seed_step >= 0 && last_step < sequence_.num_steps() &&
                   seed_step <= last_step,
               "PredictiveTracker: bad step range");
  PredictiveTrack track;

  // Locate the seed component.
  Labeling labeling = label_components(criterion_mask(seed_step));
  IFET_REQUIRE(labeling.labels.dims().contains(seed),
               "PredictiveTracker: seed out of range");
  std::int32_t seed_label =
      labeling.labels[labeling.labels.linear_index(seed.x, seed.y, seed.z)];
  if (seed_label == 0) {
    track.lost_at = seed_step;
    return track;
  }
  track.steps.push_back(
      {seed_step, labeling.info(seed_label), 0.0, 1});

  for (int step = seed_step + 1; step <= last_step; ++step) {
    // Predict: linear motion from the last two matched steps; size carries
    // over from the last match.
    const ComponentInfo& last = track.steps.back().component;
    Vec3 predicted_centroid = last.centroid;
    if (track.steps.size() >= 2) {
      const ComponentInfo& prev =
          track.steps[track.steps.size() - 2].component;
      predicted_centroid += last.centroid - prev.centroid;
    }
    const double predicted_size = static_cast<double>(last.voxel_count);

    // Verify candidates.
    std::vector<ComponentInfo> candidates = components_at(step);
    const ComponentInfo* best = nullptr;
    double best_error = config_.centroid_tolerance;
    int verified = 0;
    for (const auto& candidate : candidates) {
      double error = (candidate.centroid - predicted_centroid).norm();
      double ratio = static_cast<double>(candidate.voxel_count) /
                     std::max(1.0, predicted_size);
      bool ok = error <= config_.centroid_tolerance &&
                ratio <= config_.size_ratio_tolerance &&
                ratio >= 1.0 / config_.size_ratio_tolerance;
      if (!ok) continue;
      ++verified;
      if (best == nullptr || error < best_error) {
        best = &candidate;
        best_error = error;
      }
    }
    if (best == nullptr) {
      track.lost_at = step;
      break;
    }
    track.steps.push_back({step, *best, best_error, verified});
  }
  return track;
}

}  // namespace ifet
