file(REMOVE_RECURSE
  "libifet_tf.a"
)
