// TSan storm for the multi-tenant server (docs/SERVER.md): many client
// sessions hammering one shared streaming tier — concurrent strand
// drains, submits from several threads, session churn, and lock-free
// stats readers — while a tight budget keeps eviction, admission, and
// prefetch all live. Plain builds run it as a quick correctness check;
// the tsan preset runs it as the race detector it was written to be.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "server/session_manager.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{8, 8, 8};
constexpr std::size_t kStepBytes =
    static_cast<std::size_t>(8 * 8 * 8) * sizeof(float);

std::shared_ptr<CallbackSource> blob_source(int steps) {
  return std::make_shared<CallbackSource>(
      kDims, steps, std::pair<double, double>{0.0, 1.0}, [](int step) {
        VolumeF v(kDims);
        for (int k = 0; k < kDims.z; ++k) {
          for (int j = 0; j < kDims.y; ++j) {
            for (int i = 0; i < kDims.x; ++i) {
              const double dx = i - (kDims.x / 4 + step);
              const double dy = j - kDims.y / 2;
              const double dz = k - kDims.z / 2;
              v.at(i, j, k) = static_cast<float>(
                  clamp(1.0 - (dx * dx + dy * dy + dz * dz) / 9.0, 0.0, 1.0));
            }
          }
        }
        return v;
      });
}

TEST(StressServer, ConcurrentSessionStorm) {
  const int steps = 6;
  SessionManagerConfig config;
  config.tier.budget_bytes = 3 * kStepBytes;  // tight: eviction stays live
  config.tier.pin_quota_bytes = 2 * kStepBytes;
  config.tier.async_prefetch = true;
  config.command_threads = 4;
  SessionManager manager(blob_source(steps), config);

  constexpr int kSessions = 8;
  std::vector<int> ids;
  for (int s = 0; s < kSessions; ++s) {
    ids.push_back(manager.create_session());
  }

  // Seed every session with a key frame so TF queries are legal.
  Command key;
  key.kind = CommandKind::kSetKeyFrame;
  key.step = 0;
  for (int id : ids) ASSERT_TRUE(manager.execute(id, key).ok);

  std::atomic<std::uint64_t> failures{0};
  auto check = [&failures](const ServerResult& r) {
    if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
  };

  // Phase 1: several submitter threads spraying order-independent
  // commands (reads + window churn) across ALL sessions, interleaved with
  // lock-free stats readers and a training command per session from its
  // own dedicated thread.
  constexpr int kSubmitters = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&manager, &ids, &check, t, steps] {
      for (int i = 0; i < 48; ++i) {
        const int id = ids[static_cast<std::size_t>((t + i) % kSessions)];
        Command c;
        switch (i % 3) {
          case 0:
            c.kind = CommandKind::kHistogram;
            c.step = (t + i) % steps;
            break;
          case 1:
            c.kind = CommandKind::kQueryTf;
            c.step = (t * 7 + i) % steps;
            break;
          default:
            c.kind = CommandKind::kHintWindow;
            c.window_lo = i % steps;
            c.window_hi = i % steps;
            break;
        }
        manager.submit(id, c, check);
      }
    });
  }
  threads.emplace_back([&manager, &ids] {
    for (int i = 0; i < 200; ++i) {
      (void)manager.tier().stats();
      for (int id : ids) (void)manager.session_stats(id);
    }
  });
  // Session churn: extra sessions created, worked, and closed while the
  // storm runs — registration, hash refcounts, and pin release all race
  // against the steady-state tenants.
  threads.emplace_back([&manager, &check] {
    for (int i = 0; i < 6; ++i) {
      const int id = manager.create_session();
      Command c;
      c.kind = CommandKind::kHistogram;
      c.step = i % 3;
      manager.submit(id, c, check);
      manager.close_session(id);
    }
  });
  for (auto& t : threads) t.join();
  manager.drain_all();
  EXPECT_EQ(failures.load(), 0u);

  // Phase 2: identical deterministic scripts on two quiet sessions must
  // agree bitwise even after the storm (their MLPs never trained, and
  // derived products are state-keyed).
  Command query;
  query.kind = CommandKind::kQueryTf;
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    const ServerResult ra = manager.execute(ids[0], query);
    const ServerResult rb = manager.execute(ids[1], query);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(ra.digest, rb.digest);
  }

  // Dedup across the storm: the shared cache served repeated requests.
  const StreamStats tier_stats = manager.tier().stats();
  EXPECT_GT(tier_stats.derived_hits, 0u);
}

}  // namespace
}  // namespace ifet
