# Empty compiler generated dependencies file for tf_test.
# This may be replaced when dependencies are built.
