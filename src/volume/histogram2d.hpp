// Two-dimensional value x gradient-magnitude histograms.
//
// The classic data-driven transfer-function design aid (Kindlmann's course
// the paper cites in Sec 4.2): material interiors cluster at low gradient
// magnitude, boundaries arc through high gradient magnitude between the
// materials they separate. The library uses it two ways: as a diagnostic
// (which value bands are boundaries vs interiors) and to derive a
// boundary-emphasis opacity curve a user can start a key frame from.
#pragma once

#include <utility>
#include <vector>

#include "tf/transfer_function.hpp"
#include "volume/volume.hpp"

namespace ifet {

class Histogram2D {
 public:
  /// Bins `volume`'s (value, |gradient|) pairs into a value_bins x
  /// gradient_bins grid. Value range [vlo, vhi] is caller-fixed (use the
  /// sequence-global range); the gradient axis spans [0, max |gradient|]
  /// measured on this volume.
  Histogram2D(const VolumeF& volume, int value_bins, int gradient_bins,
              double value_lo, double value_hi);

  int value_bins() const { return value_bins_; }
  int gradient_bins() const { return gradient_bins_; }
  double value_lo() const { return value_lo_; }
  double value_hi() const { return value_hi_; }
  double gradient_max() const { return gradient_max_; }

  std::size_t count(int value_bin, int gradient_bin) const;
  std::size_t total() const { return total_; }

  /// Mean gradient magnitude of the voxels in a value bin (0 if empty).
  double mean_gradient_of_value_bin(int value_bin) const;

  /// Boundary-emphasis opacity curve: each value's opacity is proportional
  /// to its mean gradient magnitude (normalized to peak at `peak_opacity`).
  /// Values that only occur in flat regions become transparent; interface
  /// values light up — a data-driven starting TF.
  TransferFunction1D boundary_emphasis_tf(double peak_opacity = 0.8) const;

 private:
  int value_bins_, gradient_bins_;
  double value_lo_, value_hi_;
  double gradient_max_;
  std::vector<std::size_t> counts_;          // value-major
  std::vector<double> gradient_sum_;         // per value bin
  std::vector<std::size_t> value_bin_total_; // per value bin
  std::size_t total_ = 0;
};

}  // namespace ifet
