file(REMOVE_RECURSE
  "CMakeFiles/bench_tracking_methods.dir/bench_tracking_methods.cpp.o"
  "CMakeFiles/bench_tracking_methods.dir/bench_tracking_methods.cpp.o.d"
  "bench_tracking_methods"
  "bench_tracking_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracking_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
