#pragma once
#include <mutex>

class PeerA;

class PeerB {
 public:
  void poke();
  void touch();

 private:
  std::mutex mutex_;
  PeerA* peer_;
};
