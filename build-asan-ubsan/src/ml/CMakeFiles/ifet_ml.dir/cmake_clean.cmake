file(REMOVE_RECURSE
  "CMakeFiles/ifet_ml.dir/classifier.cpp.o"
  "CMakeFiles/ifet_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/ifet_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/ifet_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/ifet_ml.dir/svm.cpp.o"
  "CMakeFiles/ifet_ml.dir/svm.cpp.o.d"
  "libifet_ml.a"
  "libifet_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
