// Wall-clock stopwatch used by the benchmark harnesses and by the
// idle-loop training driver (which budgets training work in milliseconds,
// mirroring the paper's "training is performed iteratively in the system's
// idle loop").
#pragma once

#include <chrono>

namespace ifet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ifet
