file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_combustion.dir/bench_fig5_combustion.cpp.o"
  "CMakeFiles/bench_fig5_combustion.dir/bench_fig5_combustion.cpp.o.d"
  "bench_fig5_combustion"
  "bench_fig5_combustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_combustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
