// Figure 7 reproduction: removing the tiny "noise" features of the
// reionization data set (t = 310) while keeping the large structures.
//
// Paper comparison (left to right): (a) direct volume rendering with a 1D
// TF shows everything; (b) re-specifying the TF cannot remove the small
// features "because many of the small features have data values similar to
// the large structure"; (c) repeatedly smoothing the volume removes them
// "but at the same time the fine details on the large features would be
// taken away too"; (d) the learning-based method suppresses the tiny
// features while preserving the detail.
//
// Quantities: leakage = fraction of small-feature voxels the extraction
// keeps; large recall = fraction of large-structure voxels kept; detail
// error = mean |value change| over the large structures (nonzero only for
// smoothing, which rewrites voxel values).
#include <iostream>

#include "bench_util.hpp"
#include "core/dataspace.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "volume/filters.hpp"
#include "volume/ops.hpp"

namespace {

using namespace ifet;

/// Emulate painting: sample `count` voxels uniformly from a mask.
std::vector<PaintedVoxel> sample_mask(const Mask& mask, int step,
                                      double certainty, std::size_t count,
                                      Rng& rng) {
  std::vector<Index3> candidates;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) candidates.push_back(mask.coord_of(i));
  }
  std::vector<PaintedVoxel> out;
  for (std::size_t s = 0; s < count && !candidates.empty(); ++s) {
    out.push_back(
        {candidates[rng.uniform_index(candidates.size())], step, certainty});
  }
  return out;
}

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== Fig 7: removing tiny features (reionization, t=310) "
               "===\n";

  ReionizationConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 400;
  auto source = std::make_shared<ReionizationSource>(cfg);
  const int t = 310;
  VolumeF volume = source->generate(t);
  Mask large = source->large_mask(t);
  Mask small = source->small_mask(t);
  Mask background(volume.dims());
  for (std::size_t i = 0; i < background.size(); ++i) {
    background[i] = (!large[i] && !small[i]) ? 1 : 0;
  }

  Table table(
      {"method", "small_leakage", "large_recall", "detail_error"});
  CsvWriter csv(bench::output_dir() + "/fig7_dataspace.csv",
                {"method", "small_leakage", "large_recall", "detail_error"});
  auto report = [&](const std::string& name, const Mask& extracted,
                    const VolumeF& retained_field) {
    double leak = coverage(extracted, small);
    double recall = coverage(extracted, large);
    double detail = masked_mean_abs_difference(volume, retained_field, large);
    table.add_row({name, Table::num(leak), Table::num(recall),
                   Table::num(detail, 4)});
    csv.row(name, leak, recall, detail);
    return std::tuple{leak, recall, detail};
  };

  // (a) The plain 1D TF the scientist starts from: show everything bright.
  Mask tf_plain = threshold_mask(volume, 0.30f, 1.0f);
  auto [leak_a, recall_a, detail_a] = report("1d-tf", tf_plain, volume);

  // (b) Best re-specified 1D TF: sweep the lower threshold for the best
  // large-vs-small F1 it can possibly reach.
  double best_f1 = -1.0;
  float best_lo = 0.0f;
  for (float lo = 0.30f; lo <= 0.95f; lo += 0.05f) {
    Mask m = threshold_mask(volume, lo, 1.0f);
    double f1 = score_mask(m, large).f1();
    if (f1 > best_f1) {
      best_f1 = f1;
      best_lo = lo;
    }
  }
  Mask tf_best = threshold_mask(volume, best_lo, 1.0f);
  auto [leak_b, recall_b, detail_b] = report("1d-tf-respecified", tf_best,
                                             volume);

  // (c) Repeated smoothing, then the original TF on the smoothed field.
  VolumeF smoothed = repeated_smooth(volume, 1.2, 3);
  Mask smooth_mask = threshold_mask(smoothed, 0.30f, 1.0f);
  auto [leak_c, recall_c, detail_c] = report("smoothing", smooth_mask,
                                             smoothed);

  // (d) Learning-based: paint large structures positive, small features and
  // background negative, train, classify.
  DataSpaceConfig dcfg;
  dcfg.spec.shell_radius = 3.0;
  dcfg.spec.use_time = false;  // single-step study
  DataSpaceClassifier clf(cfg.num_steps, 0.0, 1.0, dcfg);
  Rng rng(2025);
  std::vector<PaintedVoxel> painted;
  auto append = [&](std::vector<PaintedVoxel> v) {
    painted.insert(painted.end(), v.begin(), v.end());
  };
  append(sample_mask(large, t, 1.0, 500, rng));
  append(sample_mask(small, t, 0.0, 350, rng));
  append(sample_mask(background, t, 0.0, 350, rng));
  clf.add_samples(volume, t, painted);
  clf.train(400);
  Mask learned = clf.classify_mask(volume, t, 0.5);
  auto [leak_d, recall_d, detail_d] = report("learning-based", learned,
                                             volume);

  table.print(std::cout);
  std::cout << '\n';
  (void)detail_a;
  (void)detail_b;
  (void)recall_c;
  (void)detail_d;

  bench::ShapeCheck check;
  check.expect(leak_a > 0.5, "plain 1D TF shows the tiny features too");
  check.expect(leak_b > 0.3 || recall_b < 0.6,
               "no re-specified 1D TF removes small features without losing "
               "large ones (values overlap)");
  check.expect(leak_c < leak_a * 0.5,
               "smoothing does remove most tiny features");
  check.expect(detail_c > 0.02,
               "smoothing destroys fine detail on the large structures");
  check.expect(leak_d < 0.3, "learning-based extraction suppresses the "
                             "tiny features");
  check.expect(recall_d > 0.8,
               "learning-based extraction keeps the large structures");
  check.expect(leak_d < leak_b && recall_d > 0.9 * recall_b,
               "learning-based beats the best re-specified TF on both axes");
  return check.exit_code();
}
