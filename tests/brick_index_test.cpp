// BrickIndex correctness: per-brick ranges vs brute force, NaN and ragged
// extents, serialization, TF classification — and the renderer-level
// property the whole subsystem exists for: empty-space skipping is bitwise
// identical to the unskipped march for random volumes and random TFs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "render/raycaster.hpp"
#include "test_helpers.hpp"
#include "tf/transfer_function.hpp"
#include "util/io_error.hpp"
#include "util/rng.hpp"
#include "volume/brick_index.hpp"

namespace ifet {
namespace {

/// Brute-force min/max of one brick, the reference the builder must match.
BrickIndex::Range brute_range(const VolumeF& v, int bx, int by, int bz,
                              int bsize) {
  const Dims d = v.dims();
  BrickIndex::Range r{std::numeric_limits<float>::infinity(),
                      -std::numeric_limits<float>::infinity()};
  bool has_nan = false;
  for (int k = bz * bsize; k < std::min((bz + 1) * bsize, d.z); ++k) {
    for (int j = by * bsize; j < std::min((by + 1) * bsize, d.y); ++j) {
      for (int i = bx * bsize; i < std::min((bx + 1) * bsize, d.x); ++i) {
        const float val = v.at(i, j, k);
        if (std::isnan(val)) {
          has_nan = true;
          continue;
        }
        r.lo = std::min(r.lo, val);
        r.hi = std::max(r.hi, val);
      }
    }
  }
  if (has_nan) {
    r.lo = -std::numeric_limits<float>::infinity();
    r.hi = std::numeric_limits<float>::infinity();
  }
  return r;
}

TEST(BrickIndex, RangesMatchBruteForceOnRaggedExtents) {
  // Extents deliberately not multiples of the brick size, several brick
  // sizes, random data: every brick's stored range must equal the brute
  // scan and never be NaN.
  const Dims dims_set[] = {{13, 9, 17}, {16, 16, 16}, {20, 5, 3}};
  const int brick_sizes[] = {4, 8, 5};
  std::uint64_t seed = 11;
  for (const Dims& d : dims_set) {
    for (int bsize : brick_sizes) {
      const VolumeF v = testing::random_volume(d, seed++, -2.0, 3.0);
      const BrickIndex index = BrickIndex::build(v, bsize);
      EXPECT_EQ(index.brick_size(), bsize);
      EXPECT_EQ(index.volume_dims(), d);
      const Dims g = index.grid();
      EXPECT_EQ(g.x, (d.x + bsize - 1) / bsize);
      EXPECT_EQ(g.y, (d.y + bsize - 1) / bsize);
      EXPECT_EQ(g.z, (d.z + bsize - 1) / bsize);
      for (int bz = 0; bz < g.z; ++bz) {
        for (int by = 0; by < g.y; ++by) {
          for (int bx = 0; bx < g.x; ++bx) {
            const BrickIndex::Range got = index.range(bx, by, bz);
            const BrickIndex::Range want = brute_range(v, bx, by, bz, bsize);
            EXPECT_EQ(got.lo, want.lo);
            EXPECT_EQ(got.hi, want.hi);
            EXPECT_FALSE(std::isnan(got.lo));
            EXPECT_FALSE(std::isnan(got.hi));
          }
        }
      }
    }
  }
}

TEST(BrickIndex, NanVoxelWidensBrickToUnbounded) {
  VolumeF v = testing::random_volume(Dims{12, 12, 12}, 7);
  v.at(2, 3, 4) = std::numeric_limits<float>::quiet_NaN();
  const BrickIndex index = BrickIndex::build(v, 8);
  // The contaminated brick is [-inf, +inf] — never NaN — so no TF with a
  // visible entry can prove it transparent and NaN data is always marched.
  const BrickIndex::Range r = index.range(0, 0, 0);
  EXPECT_TRUE(std::isinf(r.lo) && r.lo < 0.0f);
  EXPECT_TRUE(std::isinf(r.hi) && r.hi > 0.0f);
  std::vector<std::uint8_t> active;
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.45, 0.55, 1.0);  // any nonzero band keeps the brick
  index.classify(tf, active);
  EXPECT_NE(active[index.brick_linear(0, 0, 0)], 0);
  // A TF with zero opacity everywhere proves even unbounded ranges
  // transparent (nothing is visible), so the brick is culled.
  TransferFunction1D transparent(0.0, 1.0);
  index.classify(transparent, active);
  EXPECT_EQ(active[index.brick_linear(0, 0, 0)], 0);
}

TEST(BrickIndex, SerializeRoundTripsExactly) {
  const Dims d{11, 14, 6};
  const VolumeF v = testing::random_volume(d, 21, -1.0, 1.0);
  const BrickIndex index = BrickIndex::build(v, 4);
  const std::vector<std::uint8_t> bytes = index.serialize();
  EXPECT_EQ(bytes.size(), BrickIndex::serialized_bytes(d, 4));
  const BrickIndex back =
      BrickIndex::deserialize(d, 4, bytes.data(), bytes.size());
  ASSERT_EQ(back.num_bricks(), index.num_bricks());
  for (std::size_t b = 0; b < index.num_bricks(); ++b) {
    EXPECT_EQ(back.ranges()[b].lo, index.ranges()[b].lo);
    EXPECT_EQ(back.ranges()[b].hi, index.ranges()[b].hi);
  }
}

TEST(BrickIndex, DeserializeRejectsCorruptSections) {
  const Dims d{8, 8, 8};
  const VolumeF v = testing::random_volume(d, 3);
  std::vector<std::uint8_t> bytes = BrickIndex::build(v, 8).serialize();
  EXPECT_THROW(BrickIndex::deserialize(d, 8, bytes.data(), bytes.size() - 1),
               CorruptDataError);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bytes.data(), &nan, sizeof(float));
  EXPECT_THROW(BrickIndex::deserialize(d, 8, bytes.data(), bytes.size()),
               CorruptDataError);
}

TEST(BrickIndex, ClassifyCullsOnlyTransparentRanges) {
  // Two separated value populations; a TF band over one must keep its
  // bricks (and their dilation shell) active and cull far-away bricks.
  VolumeF v(Dims{32, 32, 32}, 0.1f);
  for (int k = 24; k < 32; ++k) {
    for (int j = 24; j < 32; ++j) {
      for (int i = 24; i < 32; ++i) v.at(i, j, k) = 0.9f;
    }
  }
  const BrickIndex index = BrickIndex::build(v, 8);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.8, 1.0, 1.0);
  std::vector<std::uint8_t> active;
  index.classify(tf, active);
  // The hot corner brick stays; the opposite corner (far outside the
  // 3x3x3 dilation of any hot brick) is culled.
  EXPECT_NE(active[index.brick_linear(3, 3, 3)], 0);
  EXPECT_EQ(active[index.brick_linear(0, 0, 0)], 0);
}

// --- The renderer-level property ------------------------------------------

TransferFunction1D random_tf(Rng& rng) {
  TransferFunction1D tf(0.0, 1.0);
  const int bands = static_cast<int>(rng.uniform(0.0, 3.0));
  for (int b = 0; b < bands; ++b) {
    const double lo = rng.uniform(0.0, 0.9);
    const double hi = lo + rng.uniform(0.02, 0.3);
    tf.add_band(lo, std::min(hi, 1.0), rng.uniform(0.2, 1.0));
  }
  return tf;
}

/// Renders the same scene with and without empty-space skipping and
/// requires bitwise-identical pixels.
void expect_bitwise_equal(const RenderSettings& base, const VolumeF& v,
                          const TransferFunction1D& tf,
                          const ColorMap& colors, const Camera& cam,
                          const HighlightLayer* highlight,
                          RenderStats* skip_stats = nullptr) {
  RenderSettings with = base, without = base;
  with.empty_space_skipping = true;
  without.empty_space_skipping = false;
  const ImageRgb8 a =
      Raycaster(with).render(v, tf, colors, cam, highlight, skip_stats);
  const ImageRgb8 b =
      Raycaster(without).render(v, tf, colors, cam, highlight, nullptr);
  ASSERT_EQ(a.pixels.size(), b.pixels.size());
  for (std::size_t p = 0; p < a.pixels.size(); ++p) {
    if (a.pixels[p] != b.pixels[p]) {
      const std::size_t pixel = p / 3;
      ADD_FAILURE() << "first mismatch at pixel (" << pixel % base.width << ", "
                    << pixel / base.width << ") channel " << p % 3
                    << ": skipped=" << int(a.pixels[p])
                    << " unskipped=" << int(b.pixels[p]);
      return;
    }
  }
}

TEST(BrickSkipEquivalence, RandomTfsRandomVolumesAllModes) {
  Rng rng(99);
  const ColorMap colors;
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const Dims d{21 + 2 * trial, 24, 19};  // ragged vs the 8^3 bricks
    VolumeF v = testing::random_volume(d, 1000 + trial);
    if (trial == 5) {  // NaN-contaminated data must render identically too
      v.at(1, 2, 3) = std::numeric_limits<float>::quiet_NaN();
    }
    const TransferFunction1D tf = random_tf(rng);
    const Camera cam(rng.uniform(0.0, 6.28), rng.uniform(-1.2, 1.2), 2.4);

    RenderSettings s;
    s.width = 40;
    s.height = 40;
    {
      SCOPED_TRACE("front-to-back");
      expect_bitwise_equal(s, v, tf, colors, cam, nullptr);
    }
    RenderSettings mip = s;
    mip.mode = CompositingMode::kMaximumIntensity;
    mip.shading = false;
    {
      SCOPED_TRACE("mip");
      expect_bitwise_equal(mip, v, tf, colors, cam, nullptr);
    }
  }
}

TEST(BrickSkipEquivalence, TrackedFeatureOverlay) {
  const Dims d{26, 26, 26};
  const VolumeF v = testing::blob_volume(d, Vec3{12, 12, 12}, 4.0, 1.0f);
  const Mask mask = testing::box_mask(d, Index3{10, 10, 10}, Index3{15, 15, 15});
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.7, 0.9, 0.6);
  TransferFunction1D adaptive(0.0, 1.0);
  adaptive.add_band(0.05, 0.5, 0.8);  // visible where the main TF is not
  HighlightLayer highlight;
  highlight.mask = &mask;
  highlight.tf = &adaptive;
  RenderSettings s;
  s.width = 40;
  s.height = 40;
  const ColorMap colors;
  const Camera cam(0.7, 0.3, 2.2);
  expect_bitwise_equal(s, v, tf, colors, cam, &highlight);
}

TEST(BrickSkipEquivalence, ClassifiedRenderAndSkipCounters) {
  // TF-sparse scene: a small hot blob in a large cold volume. The skip
  // path must (a) actually skip, (b) stay bitwise identical through the
  // certainty-modulated render.
  const Dims d{48, 48, 48};
  const VolumeF v = testing::blob_volume(d, Vec3{24, 24, 24}, 3.0, 1.0f);
  VolumeF certainty(d, 1.0f);
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.6, 1.0, 0.9);
  const ColorMap colors;
  const Camera cam(0.5, 0.4, 2.5);
  RenderSettings s;
  s.width = 48;
  s.height = 48;

  RenderSettings with = s, without = s;
  with.empty_space_skipping = true;
  without.empty_space_skipping = false;
  RenderStats stats;
  const ImageRgb8 a = Raycaster(with).render_classified(v, certainty, tf,
                                                        colors, cam, &stats);
  const ImageRgb8 b =
      Raycaster(without).render_classified(v, certainty, tf, colors, cam);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_GT(stats.samples_skipped, 0u);
  EXPECT_GT(stats.skip_rate(), 0.5);  // most of the scene is empty space
  EXPECT_GT(stats.bricks_total, 0u);
  EXPECT_LT(stats.bricks_active, stats.bricks_total);
}

}  // namespace
}  // namespace ifet
