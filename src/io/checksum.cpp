#include "io/checksum.hpp"

namespace ifet {

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ChecksumCounters& checksum_counters() {
  thread_local ChecksumCounters counters;
  return counters;
}

}  // namespace ifet
