// ifet_lint — multi-pass static analyzer for the ifet source tree.
//
// Registered as a ctest (see tools/CMakeLists.txt) so CI fails when a
// convention regresses; docs/STATIC_ANALYSIS.md documents every pass and
// docs/CORRECTNESS.md the per-file convention rules. Suppress a finding
// with `// ifet-lint: allow(<rule>)` on the offending line or the line
// above (file-wide: `// ifet-lint: allow-file(<rule>)`).
//
// Passes (each with its own exit-code bit, so CI logs show at a glance
// which family regressed):
//   conventions (bit 1)  per-file repo-convention rules: voxel-raw-access,
//                        extent-unchecked, iostream-in-header, raw-rand,
//                        catch-all, direct-volume-load,
//                        scalar-forward-in-hot-loop.
//   lock-order  (bit 2)  cross-TU mutex-acquisition graph; fails on
//                        cycles, re-entrant acquisitions, and MutexRank
//                        inversions (rule lock-order-cycle).
//   layering    (bit 4)  include-layer DAG (rule layer-violation) and
//                        header-dependency cycles (rule include-cycle).
// I/O or usage errors exit 64.
//
// Usage: ifet_lint [--format=text|json] [--only=rule,rule...]
//                  <dir-or-file>...
//   (typically: ifet_lint <repo>/src)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "lint/conventions_pass.hpp"
#include "lint/layering_pass.hpp"
#include "lint/lock_order_pass.hpp"
#include "lint/tokenizer.hpp"

namespace {

using ifet_lint::Finding;
using ifet_lint::SourceFile;
namespace fs = std::filesystem;

constexpr int kExitConventions = 1;
constexpr int kExitLockOrder = 2;
constexpr int kExitLayering = 4;
constexpr int kExitError = 64;

int exit_bit_for(const std::string& rule) {
  if (rule == "lock-order-cycle") return kExitLockOrder;
  if (rule == "layer-violation" || rule == "include-cycle") {
    return kExitLayering;
  }
  if (rule == "io-error") return kExitError;
  return kExitConventions;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, int exit_code) {
  std::cout << "{\n  \"files_scanned\": " << files_scanned
            << ",\n  \"exit_code\": " << exit_code << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"path\": \"" << json_escape(f.path)
              << "\", \"line\": " << f.line << ", \"rule\": \""
              << json_escape(f.rule) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::set<std::string> only;
  std::vector<fs::path> roots;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "ifet_lint: unknown format '" << format << "'\n";
        return kExitError;
      }
    } else if (arg.rfind("--only=", 0) == 0) {
      std::string rules = arg.substr(7);
      std::size_t start = 0;
      while (start <= rules.size()) {
        const auto comma = rules.find(',', start);
        const auto len =
            (comma == std::string::npos ? rules.size() : comma) - start;
        if (len > 0) only.insert(rules.substr(start, len));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (only.empty()) {
        std::cerr << "ifet_lint: --only needs at least one rule\n";
        return kExitError;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ifet_lint: unknown option '" << arg << "'\n";
      return kExitError;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: ifet_lint [--format=text|json] "
                 "[--only=rule,rule...] <dir-or-file>...\n";
    return kExitError;
  }

  std::vector<SourceFile> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(ifet_lint::load_file(root));
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "ifet_lint: no such file or directory: " << root << "\n";
      return kExitError;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !ifet_lint::is_source_file(it->path())) {
        continue;
      }
      paths.push_back(it->path());
    }
    // Directory iteration order is filesystem-dependent; sort so findings
    // and include-graph traversal are stable across machines.
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) files.push_back(ifet_lint::load_file(p));
  }

  std::vector<Finding> findings;
  for (const auto& f : files) {
    if (!f.ok) {
      findings.push_back({f.path.string(), 0, "io-error", "cannot read file"});
      continue;
    }
    ifet_lint::run_conventions_pass(f, findings);
  }
  ifet_lint::run_lock_order_pass(files, findings);
  ifet_lint::run_layering_pass(files, findings);

  if (!only.empty()) {
    std::vector<Finding> kept;
    for (auto& f : findings) {
      if (only.count(f.rule) != 0 || f.rule == "io-error") {
        kept.push_back(std::move(f));
      }
    }
    findings.swap(kept);
  }

  int exit_code = 0;
  for (const auto& f : findings) exit_code |= exit_bit_for(f.rule);

  if (format == "json") {
    print_json(findings, files.size(), exit_code);
    return exit_code;
  }
  for (const auto& f : findings) {
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "ifet_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
  } else {
    std::cout << "ifet_lint: OK (" << files.size() << " files scanned)\n";
  }
  return exit_code;
}
