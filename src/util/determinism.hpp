// Perturbed-replay harness for the IFET_DETERMINISTIC contract
// (docs/CORRECTNESS.md, docs/STATIC_ANALYSIS.md).
//
// The static side of the contract is ifet_lint's determinism pass: any
// function reachable from an IFET_DETERMINISTIC root must not observe
// hash order, wall clocks, pointer identity, or reduction order. This
// header is the dynamic side: ReplayCheck runs an annotated computation
// under deliberately perturbed conditions — different thread-pool widths,
// shuffled work-item submission order, cold versus warm caches — and
// asserts that a digest of the results is bitwise identical every time.
// A kernel that passes the lint but secretly depends on scheduling will
// fail here; a kernel that passes both has earned its annotation.
//
// Layering: util (rank 0) cannot include parallel/ (rank 1), so the
// harness is pool-agnostic. Each ReplayTrial carries the pool width the
// runner should apply; bench runners wrap their kernel invocation in a
// ThreadPool::ScopedGlobalWidth(trial.threads) themselves. Shuffling is
// likewise cooperative: replay_permutation gives the runner a
// deterministic order to submit work items in when trial.shuffled is set.
//
// Digesting uses FNV-1a over raw bytes. Float outputs are digested via
// their bit patterns (DigestSink::pod), so "equal" means bitwise equal —
// the same gate the repo's memcmp equivalence checks apply. No wall
// clocks, no std::random_device: the harness must satisfy the very
// contract it checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace ifet {

/// One perturbed execution of the computation under test.
struct ReplayTrial {
  std::size_t threads = 1;  // pool width the runner must apply
  bool shuffled = false;    // submit work items in replay_permutation order
  bool warm = false;        // false: first run at this width (cold caches)
  std::size_t index = 0;    // ordinal within the schedule (0 = reference)
};

/// Order-preserving FNV-1a (64-bit) accumulator. Streaming the outputs of
/// a kernel through one of these yields a value that changes if any byte
/// — or the order of any byte — changes.
class DigestSink {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }

  /// Digest a trivially-copyable value by bit pattern (floats included:
  /// two NaNs with different payloads digest differently, which is what a
  /// bitwise contract wants).
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "DigestSink::pod requires a trivially copyable type");
    bytes(&v, sizeof(T));
  }

  template <typename T>
  void span(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "DigestSink::span requires a trivially copyable type");
    bytes(data, count * sizeof(T));
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

/// Deterministic pseudo-shuffle of [0, n): a fixed-increment LCG drives a
/// Fisher-Yates pass, so the "shuffled" submission order is itself
/// reproducible run to run (the perturbation must be repeatable or a
/// failure could not be re-run).
inline std::vector<std::size_t> replay_permutation(std::size_t n,
                                                   std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (std::size_t i = n; i > 1; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t j = static_cast<std::size_t>((state >> 33) % i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

/// Outcome of one trial, kept for the report.
struct ReplayTrialResult {
  ReplayTrial trial;
  std::uint64_t digest = 0;
  bool matches_reference = false;
};

struct ReplayReport {
  std::string name;
  bool ok = false;
  std::uint64_t reference_digest = 0;
  std::vector<ReplayTrialResult> trials;

  /// One line per trial plus a verdict, for bench logs and CI artifacts.
  std::string summary() const {
    std::ostringstream out;
    out << "replay-check " << name << ": "
        << (ok ? "DETERMINISTIC" : "DIVERGED") << " across " << trials.size()
        << " trials (reference digest " << std::hex << reference_digest
        << std::dec << ")\n";
    for (const ReplayTrialResult& r : trials) {
      out << "  trial " << r.trial.index << ": threads=" << r.trial.threads
          << (r.trial.shuffled ? " shuffled" : " ordered")
          << (r.trial.warm ? " warm" : " cold") << " digest=" << std::hex
          << r.digest << std::dec
          << (r.matches_reference ? "" : "  <-- MISMATCH") << "\n";
    }
    return out.str();
  }
};

/// Runs a computation under a schedule of perturbed trials and checks all
/// digests agree. The runner receives each ReplayTrial and returns the
/// digest of the computation's observable output (typically a DigestSink
/// fed with the result buffers). The runner — not the harness — applies
/// the trial's width (ThreadPool::ScopedGlobalWidth) and, when
/// trial.shuffled is set, submits its work items in
/// replay_permutation(...) order; this keeps the harness free of any
/// dependency on the parallel layer.
///
/// Schedule per width, in order: cold ordered, warm ordered, warm
/// shuffled. The first trial overall is the reference. Duplicate widths
/// are collapsed; width 0 is rejected (a runner cannot build a pool of
/// zero threads deterministically — pass hardware_concurrency yourself).
class ReplayCheck {
 public:
  ReplayCheck(std::string name, std::vector<std::size_t> widths)
      : name_(std::move(name)) {
    IFET_REQUIRE(!widths.empty(), "ReplayCheck: at least one pool width");
    for (const std::size_t w : widths) {
      IFET_REQUIRE(w > 0, "ReplayCheck: pool widths must be >= 1");
      bool dup = false;
      for (const std::size_t seen : widths_) dup = dup || seen == w;
      if (!dup) widths_.push_back(w);
    }
  }

  std::vector<ReplayTrial> schedule() const {
    std::vector<ReplayTrial> trials;
    std::size_t index = 0;
    for (const std::size_t w : widths_) {
      trials.push_back(ReplayTrial{w, /*shuffled=*/false, /*warm=*/false,
                                   index++});
      trials.push_back(ReplayTrial{w, /*shuffled=*/false, /*warm=*/true,
                                   index++});
      trials.push_back(ReplayTrial{w, /*shuffled=*/true, /*warm=*/true,
                                   index++});
    }
    return trials;
  }

  ReplayReport run(
      const std::function<std::uint64_t(const ReplayTrial&)>& runner) const {
    IFET_REQUIRE(static_cast<bool>(runner), "ReplayCheck::run: empty runner");
    ReplayReport report;
    report.name = name_;
    report.ok = true;
    for (const ReplayTrial& trial : schedule()) {
      ReplayTrialResult result;
      result.trial = trial;
      result.digest = runner(trial);
      if (trial.index == 0) report.reference_digest = result.digest;
      result.matches_reference = result.digest == report.reference_digest;
      report.ok = report.ok && result.matches_reference;
      report.trials.push_back(result);
    }
    return report;
  }

 private:
  std::string name_;
  std::vector<std::size_t> widths_;
};

}  // namespace ifet
