// Memoization store for per-timestep derived products.
//
// Recomputing a histogram or a synthesized IATF transfer function after
// its source volume was evicted would force a reload of the whole step —
// the worst possible amplification of a cache miss. Derived products are
// tiny (a few KiB against MiBs of voxels), so the streaming subsystem
// keeps them all: histograms, cumulative histograms, and synthesized 1D
// transfer functions, each keyed by (timestep, params-hash). The params
// hash captures everything the product depends on besides the step — bin
// count and value range for histograms, network state for IATFs — so a
// retrained network or a re-binned histogram never collides with a stale
// entry.
//
// Values are held by shared_ptr: returned references stay valid for the
// cache's lifetime even while new products are added or retired params
// hashes are invalidated (maps are node based; erasure drops the cache's
// reference, never the product a caller still holds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "stream/stream_stats.hpp"
#include "tf/transfer_function.hpp"
#include "util/hashing.hpp"  // hash_combine / hash_double (moved to util)
#include "util/ordered_mutex.hpp"
#include "volume/histogram.hpp"

namespace ifet {

class DerivedCache {
 public:
  DerivedCache() = default;
  DerivedCache(const DerivedCache&) = delete;
  DerivedCache& operator=(const DerivedCache&) = delete;

  /// Histogram for (step, params) — `compute` runs once per distinct key.
  /// When `session_stats` is supplied the hit/miss is also attributed to
  /// that per-session view (the multi-tenant server passes each client's
  /// SharedStreamStats so dedup across clients stays observable per
  /// client; see docs/SERVER.md).
  std::shared_ptr<const Histogram> histogram(
      int step, std::uint64_t params_hash,
      const std::function<Histogram()>& compute,
      SharedStreamStats* session_stats = nullptr) IFET_EXCLUDES(mutex_);

  /// Cumulative histogram for (step, params).
  std::shared_ptr<const CumulativeHistogram> cumulative_histogram(
      int step, std::uint64_t params_hash,
      const std::function<CumulativeHistogram()>& compute,
      SharedStreamStats* session_stats = nullptr) IFET_EXCLUDES(mutex_);

  /// Synthesized transfer function for (step, params) — params must hash
  /// the network/training state (see Iatf::params_hash), so further
  /// training naturally invalidates by changing the key.
  std::shared_ptr<const TransferFunction1D> transfer_function(
      int step, std::uint64_t params_hash,
      const std::function<TransferFunction1D()>& compute,
      SharedStreamStats* session_stats = nullptr) IFET_EXCLUDES(mutex_);

  /// Drop every memoized product recorded under `params_hash`, across all
  /// three product kinds, and return how many entries were erased.
  ///
  /// This is the multi-tenant retirement primitive: when a client's
  /// network moves on (retraining changes its params hash) the entries
  /// under the OLD hash are garbage *to that client* — but another client
  /// still at that state must keep them. Erasure is therefore strictly
  /// keyed by the hash: entries under any other params hash are never
  /// touched, and the caller (SessionManager) only invokes this once no
  /// live session references the hash (docs/SERVER.md). Outstanding
  /// shared_ptrs returned earlier stay valid — invalidation drops the
  /// cache's reference, not the product.
  std::size_t invalidate(std::uint64_t params_hash) IFET_EXCLUDES(mutex_);

  /// Pressure relief (server/pressure.hpp): drop every memoized product
  /// EXCEPT those under `keep_params` — the tier histogram hash, whose
  /// products every client shares and would all recompute at once.
  /// Everything shed is recomputable from resident or reloadable data
  /// (correctness never depends on this cache), so shedding trades
  /// recompute time for bytes. Returns how many entries were erased.
  std::size_t shed_except(std::uint64_t keep_params) IFET_EXCLUDES(mutex_);

  std::size_t size() const IFET_EXCLUDES(mutex_);

  /// Counter snapshot (derived_hits / derived_misses).
  StreamStats stats() const IFET_EXCLUDES(mutex_);

 private:
  struct Key {
    int step;
    std::uint64_t params;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          hash_combine(static_cast<std::uint64_t>(k.step) * 0x100000001b3ULL,
                       k.params));
    }
  };

  template <typename T>
  using MemoMap = std::unordered_map<Key, std::shared_ptr<const T>, KeyHash>;

  /// `compute` is a user callback: it MUST run with mutex_ released (it
  /// routinely re-enters this cache for another product — see the .cpp).
  /// The map is addressed by member pointer so the guarded member is only
  /// dereferenced inside the locked scopes (passing it by reference from
  /// the unlocked public methods would leak guarded state).
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      MemoMap<T> DerivedCache::* map, int step, std::uint64_t params_hash,
      const std::function<T()>& compute, SharedStreamStats* session_stats)
      IFET_EXCLUDES(mutex_);

  template <typename T>
  std::size_t invalidate_in(MemoMap<T>& map, std::uint64_t params_hash)
      IFET_REQUIRES(mutex_);

  template <typename T>
  std::size_t shed_in(MemoMap<T>& map, std::uint64_t keep_params)
      IFET_REQUIRES(mutex_);

  mutable OrderedMutex mutex_{MutexRank::kDerivedCache};
  MemoMap<Histogram> hists_ IFET_GUARDED_BY(mutex_);
  MemoMap<CumulativeHistogram> cumhists_ IFET_GUARDED_BY(mutex_);
  MemoMap<TransferFunction1D> tfs_ IFET_GUARDED_BY(mutex_);
  StreamStats stats_ IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
