#include "io/volume_io.hpp"

#include <fstream>
#include <sstream>

namespace ifet {

void write_raw(const VolumeF& volume, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  IFET_REQUIRE(out.good(), "write_raw: cannot open " + path);
  out.write(reinterpret_cast<const char*>(volume.data().data()),
            static_cast<std::streamsize>(volume.size() * sizeof(float)));
  IFET_REQUIRE(out.good(), "write_raw: write failed for " + path);
}

VolumeF read_raw(const std::string& path, Dims dims) {
  std::ifstream in(path, std::ios::binary);
  IFET_REQUIRE(in.good(), "read_raw: cannot open " + path);
  VolumeF volume(dims);
  in.read(reinterpret_cast<char*>(volume.data().data()),
          static_cast<std::streamsize>(volume.size() * sizeof(float)));
  IFET_REQUIRE(in.gcount() ==
                   static_cast<std::streamsize>(volume.size() * sizeof(float)),
               "read_raw: file shorter than dims require: " + path);
  return volume;
}

void write_vol(const VolumeF& volume, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  IFET_REQUIRE(out.good(), "write_vol: cannot open " + path);
  out << "ifet-vol " << volume.dims().x << ' ' << volume.dims().y << ' '
      << volume.dims().z << '\n';
  out.write(reinterpret_cast<const char*>(volume.data().data()),
            static_cast<std::streamsize>(volume.size() * sizeof(float)));
  IFET_REQUIRE(out.good(), "write_vol: write failed for " + path);
}

VolumeF read_vol(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  IFET_REQUIRE(in.good(), "read_vol: cannot open " + path);
  std::string line;
  std::getline(in, line);
  std::istringstream header(line);
  std::string magic;
  Dims dims;
  header >> magic >> dims.x >> dims.y >> dims.z;
  IFET_REQUIRE(magic == "ifet-vol" && header,
               "read_vol: bad header in " + path);
  VolumeF volume(dims);
  in.read(reinterpret_cast<char*>(volume.data().data()),
          static_cast<std::streamsize>(volume.size() * sizeof(float)));
  IFET_REQUIRE(in.gcount() ==
                   static_cast<std::streamsize>(volume.size() * sizeof(float)),
               "read_vol: truncated payload in " + path);
  return volume;
}

}  // namespace ifet
