// FAIL fixture: an IFET_DETERMINISTIC root derives an ordering key from
// an allocation address (pointer-to-uintptr_t cast in a reachable
// helper) — addresses differ run to run, so anything keyed or sorted by
// them is unstable.
#include <cstdint>

#define IFET_DETERMINISTIC

namespace fixture {

struct Node {
  int id = 0;
};

class Registry {
 public:
  IFET_DETERMINISTIC std::uint64_t order_key(const Node* n) const {
    return key_of(n);
  }

 private:
  std::uint64_t key_of(const Node* n) const {
    return reinterpret_cast<std::uintptr_t>(n);  // allocation address
  }
};

}  // namespace fixture
