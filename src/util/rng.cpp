#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ifet {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  IFET_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() {
  Rng child(0);
  SplitMix64 sm(next_u64() ^ 0x5851f42d4c957f2dULL);
  child.s_[0] = sm.next();
  child.s_[1] = sm.next();
  child.s_[2] = sm.next();
  child.s_[3] = sm.next();
  return child;
}

}  // namespace ifet
