file(REMOVE_RECURSE
  "CMakeFiles/ifet_flowsim.dir/argon_bubble.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/argon_bubble.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/combustion_jet.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/combustion_jet.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/fluid_solver.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/fluid_solver.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/noise.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/noise.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/reionization.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/reionization.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/streamline.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/streamline.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/swirling_flow.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/swirling_flow.cpp.o.d"
  "CMakeFiles/ifet_flowsim.dir/turbulent_vortex.cpp.o"
  "CMakeFiles/ifet_flowsim.dir/turbulent_vortex.cpp.o.d"
  "libifet_flowsim.a"
  "libifet_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
