// Deterministic procedural noise used by the data-set generators.
//
// Hash-based trilinear value noise with fractal (fBm) stacking. Gradient
// (Perlin) noise is overkill here — the generators only need band-limited,
// seed-stable structure to stand in for turbulence and fine surface detail.
// Everything is pure function of (seed, position), so a VolumeSource can
// regenerate any time step bit-identically.
#pragma once

#include <cstdint>

#include "math/vec.hpp"

namespace ifet {

/// Stateless lattice value noise in [-1, 1].
class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) : seed_(seed) {}

  /// Smooth trilinear noise at a 3D point (period-free).
  double at(double x, double y, double z) const;

  /// 4D variant: w is typically time, decorrelating successive steps.
  double at(double x, double y, double z, double w) const;

  /// Fractal Brownian motion: `octaves` layers, each at double frequency
  /// and `gain` amplitude. Result roughly in [-1, 1].
  double fbm(double x, double y, double z, int octaves,
             double gain = 0.5) const;

  /// 4D fBm.
  double fbm(double x, double y, double z, double w, int octaves,
             double gain = 0.5) const;

 private:
  double lattice(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l) const;

  std::uint64_t seed_;
};

}  // namespace ifet
